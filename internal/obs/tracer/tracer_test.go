package tracer

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestTracer(rate float64, buf int) *Tracer {
	return New(Config{Service: "test", SampleRate: rate, BufferTraces: buf, Seed: 42})
}

// endRoot starts and immediately ends one root span, returning its hex
// trace ID.
func endRoot(t *Tracer, name string) string {
	_, sp := t.StartSpan(context.Background(), name)
	id := sp.TraceIDString()
	sp.End()
	return id
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := newTestTracer(1, 8)
	_, sp := tr.StartSpan(context.Background(), "op")
	hdr := sp.Traceparent()
	sc, ok := ParseTraceparent(hdr)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own output", hdr)
	}
	if sc.Trace != sp.TraceID() || sc.Span != sp.SpanID() || !sc.Sampled {
		t.Fatalf("round trip: got %+v, want trace=%s span=%s sampled",
			sc, sp.TraceID(), sp.SpanID())
	}
	if len(hdr) != 55 || !strings.HasPrefix(hdr, "00-") || !strings.HasSuffix(hdr, "-01") {
		t.Fatalf("malformed header %q", hdr)
	}
	sp.End()
}

func TestParseTraceparentMalformed(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("valid header rejected: %q", valid)
	}
	// A future version may append '-'-separated fields.
	if _, ok := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Fatal("future-version header with suffix rejected")
	}
	bad := []string{
		"",
		"00",
		valid[:54],       // truncated
		"ff" + valid[2:], // version ff is invalid
		valid + "x",      // version 00 must be exactly 55 chars
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331_01",  // bad separator
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",  // zero trace ID
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",  // zero span ID
		"00-zzf7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",  // non-hex
		"cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01x", // bad suffix separator
	}
	for _, s := range bad {
		if _, ok := ParseTraceparent(s); ok {
			t.Errorf("ParseTraceparent(%q) accepted malformed input", s)
		}
	}
	// Unsampled flag round trip.
	sc, ok := ParseTraceparent("00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00")
	if !ok || sc.Sampled {
		t.Fatalf("flags 00: ok=%v sampled=%v, want parsed unsampled", ok, sc.Sampled)
	}
}

func TestSamplerDeterministic(t *testing.T) {
	mkID := func(low uint64) TraceID {
		var id TraceID
		binary.BigEndian.PutUint64(id[8:], low)
		id[0] = 1
		return id
	}
	zero := New(Config{SampleRate: 0})
	one := New(Config{SampleRate: 1})
	if zero.Enabled() {
		t.Fatal("rate 0 tracer reports Enabled")
	}
	if !one.Enabled() {
		t.Fatal("rate 1 tracer reports disabled")
	}
	for _, low := range []uint64{0, 1, 1 << 32, 1 << 63, ^uint64(0)} {
		if !one.sampled(mkID(low)) {
			t.Errorf("rate 1 dropped ID with low=%d", low)
		}
	}
	// A fractional rate is a pure function of the ID: two tracers at the
	// same rate (e.g. CLI and server) agree on every ID without
	// coordination.
	a := New(Config{SampleRate: 0.25, Seed: 1})
	b := New(Config{SampleRate: 0.25, Seed: 99})
	kept := 0
	const n = 4096
	for i := 0; i < n; i++ {
		id := a.newTraceID()
		ka, kb := a.sampled(id), b.sampled(id)
		if ka != kb {
			t.Fatalf("tracers disagree on %s: %v vs %v", id, ka, kb)
		}
		if ka {
			kept++
		}
	}
	if frac := float64(kept) / n; frac < 0.2 || frac > 0.3 {
		t.Errorf("rate 0.25 kept %.3f of IDs", frac)
	}
}

func TestParentChildSpans(t *testing.T) {
	tr := newTestTracer(1, 8)
	ctx, root := tr.StartSpan(context.Background(), "root")
	cctx, child := tr.StartSpan(ctx, "child")
	_, grand := tr.StartSpan(cctx, "grandchild")
	if child.TraceID() != root.TraceID() || grand.TraceID() != root.TraceID() {
		t.Fatal("children did not inherit the trace ID")
	}
	grand.End()
	child.End()
	root.End()

	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	byName := map[string]SpanData{}
	for _, sd := range traces[0].Spans {
		byName[sd.Name] = sd
	}
	if len(byName) != 3 {
		t.Fatalf("got spans %v, want root/child/grandchild", byName)
	}
	if byName["root"].ParentID != "" {
		t.Errorf("root has parent %q", byName["root"].ParentID)
	}
	if byName["child"].ParentID != byName["root"].SpanID {
		t.Errorf("child parent = %q, want root %q", byName["child"].ParentID, byName["root"].SpanID)
	}
	if byName["grandchild"].ParentID != byName["child"].SpanID {
		t.Errorf("grandchild parent = %q, want child %q", byName["grandchild"].ParentID, byName["child"].SpanID)
	}
	// Completed children surface as the parent's stage breakdown.
	stages := root.Stages()
	if len(stages) != 1 || stages[0].Name != "child" {
		t.Errorf("root stages = %v, want [child]", stages)
	}
}

func TestRemotePropagation(t *testing.T) {
	cli := New(Config{Service: "cli", SampleRate: 1, BufferTraces: 4, Seed: 7})
	srv := New(Config{Service: "srv", SampleRate: 1, BufferTraces: 4, Seed: 8})

	_, csp := cli.StartSpan(context.Background(), "client.report")
	sc, ok := ParseTraceparent(csp.Traceparent())
	if !ok {
		t.Fatal("client traceparent did not parse")
	}
	_, ssp := srv.StartSpan(ContextWithRemote(context.Background(), sc), "http.report")
	if ssp.TraceID() != csp.TraceID() {
		t.Fatalf("server trace %s != client trace %s", ssp.TraceID(), csp.TraceID())
	}
	ssp.End()
	csp.End()

	got, ok := srv.TraceByID(csp.TraceIDString())
	if !ok {
		t.Fatal("server did not retain the joined trace")
	}
	if got.Spans[0].ParentID != csp.SpanID().String() {
		t.Fatalf("server span parent = %q, want client span %q",
			got.Spans[0].ParentID, csp.SpanID())
	}
}

func TestErrorTailRetention(t *testing.T) {
	// A rate just above zero samples (nearly) nothing by head decision.
	tr := New(Config{Service: "test", SampleRate: 1e-18, BufferTraces: 8, Seed: 42})
	if !tr.Enabled() {
		t.Fatal("tiny rate should still enable tracing")
	}
	_, ok := tr.StartSpan(context.Background(), "fine")
	_ = ok
	_, sp := tr.StartSpan(context.Background(), "fine")
	if tr.sampled(sp.TraceID()) {
		t.Skip("seed collided with the sampled set; adjust seed")
	}
	sp.End()
	if n := len(tr.Traces()); n != 0 {
		t.Fatalf("unsampled clean trace retained (%d)", n)
	}
	_, esp := tr.StartSpan(context.Background(), "broken")
	esp.Error(errors.New("boom"))
	id := esp.TraceIDString()
	esp.End()
	got, found := tr.TraceByID(id)
	if !found {
		t.Fatal("errored trace not retained despite tail rule")
	}
	if !got.Errored || got.Spans[0].Error != "boom" {
		t.Fatalf("errored trace export = %+v", got)
	}
}

func TestRingEvictionOrder(t *testing.T) {
	tr := newTestTracer(1, 2)
	id1 := endRoot(tr, "a")
	id2 := endRoot(tr, "b")
	id3 := endRoot(tr, "c")

	traces := tr.Traces()
	if len(traces) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(traces))
	}
	if traces[0].TraceID != id2 || traces[1].TraceID != id3 {
		t.Fatalf("snapshot order = [%s %s], want oldest-first [%s %s]",
			traces[0].TraceID, traces[1].TraceID, id2, id3)
	}
	if _, ok := tr.TraceByID(id1); ok {
		t.Fatal("evicted trace still reachable by ID")
	}
	// One more wraps the cursor and evicts id2.
	id4 := endRoot(tr, "d")
	traces = tr.Traces()
	if traces[0].TraceID != id3 || traces[1].TraceID != id4 {
		t.Fatalf("after wrap: [%s %s], want [%s %s]",
			traces[0].TraceID, traces[1].TraceID, id3, id4)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	ctx, sp := tr.StartSpan(context.Background(), "op")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if ctx == nil {
		t.Fatal("nil tracer dropped the context")
	}
	// Every span method must be a no-op on nil.
	sp.SetAttr("k", "v")
	sp.Event("e")
	sp.Error(errors.New("x"))
	if sp.Stages() != nil || sp.End() != 0 || sp.Traceparent() != "" ||
		sp.TraceIDString() != "" || sp.Recording() {
		t.Fatal("nil span is not a no-op")
	}
	if tr.Traces() != nil || tr.Ingest(nil) != 0 || tr.Service() != "" {
		t.Fatal("nil tracer methods not safe")
	}
	if _, ok := tr.TraceByID("00"); ok {
		t.Fatal("nil tracer found a trace")
	}
	// FromContext on a bare/nil context.
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatal("FromContext invented a span")
	}
	// The nil handler still answers (with 404s).
	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 404 {
		t.Fatalf("nil handler status = %d, want 404", rec.Code)
	}
}

func TestDisabledStartSpanAllocs(t *testing.T) {
	disabled := New(Config{SampleRate: 0})
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := disabled.StartSpan(ctx, "op")
		sp.SetAttr("k", "v")
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled StartSpan allocates %.1f times per op, want 0", allocs)
	}
	var nilTr *Tracer
	allocs = testing.AllocsPerRun(1000, func() {
		_, sp := nilTr.StartSpan(ctx, "op")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil StartSpan allocates %.1f times per op, want 0", allocs)
	}
}

func TestIngestMerge(t *testing.T) {
	tr := newTestTracer(1, 8)
	id := endRoot(tr, "server.op")
	// A client pushes its half of the same trace, plus a span with a
	// malformed ID that must be skipped.
	pushed := []SpanData{
		{TraceID: id, SpanID: "aaaaaaaaaaaaaaaa", Service: "cli", Name: "client.op"},
		{TraceID: "not-hex", SpanID: "bbbbbbbbbbbbbbbb", Service: "cli", Name: "bad"},
	}
	if n := tr.Ingest(pushed); n != 1 {
		t.Fatalf("Ingest accepted %d spans, want 1", n)
	}
	got, ok := tr.TraceByID(id)
	if !ok {
		t.Fatal("merged trace vanished")
	}
	if len(got.Spans) != 2 {
		t.Fatalf("merged trace has %d spans, want server+client = 2", len(got.Spans))
	}
	services := map[string]bool{}
	for _, sd := range got.Spans {
		services[sd.Service] = true
	}
	if !services["test"] || !services["cli"] {
		t.Fatalf("merged services = %v, want test+cli", services)
	}
	// Ingest into an empty buffer creates the trace (always retained).
	tr2 := newTestTracer(1e-18, 8)
	if n := tr2.Ingest([]SpanData{{TraceID: id, SpanID: "cccccccccccccccc", Name: "pushed"}}); n != 1 {
		t.Fatal("fresh ingest rejected")
	}
	if _, ok := tr2.TraceByID(id); !ok {
		t.Fatal("pushed trace not retained despite explicit keep")
	}
}

func TestHandlerFormats(t *testing.T) {
	tr := newTestTracer(1, 8)
	ctx, root := tr.StartSpan(context.Background(), "root")
	root.SetAttr("user", "3")
	root.Event("checkpoint")
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	root.End()
	id := root.TraceIDString()
	h := tr.Handler()

	// Default JSON listing.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var listing struct {
		Traces []TraceJSON `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &listing); err != nil {
		t.Fatalf("listing not JSON: %v", err)
	}
	if len(listing.Traces) != 1 || len(listing.Traces[0].Spans) != 2 {
		t.Fatalf("listing = %+v, want 1 trace with 2 spans", listing)
	}

	// Single-trace lookup.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+id, nil))
	if rec.Code != 200 {
		t.Fatalf("trace lookup status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace=ffffffffffffffffffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace status %d, want 404", rec.Code)
	}

	// Chrome trace-event export: valid JSON with one X event per span,
	// process metadata, and microsecond times.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?format=chrome", nil))
	var chrome struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Dur   float64        `json:"dur"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if chrome.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", chrome.DisplayTimeUnit)
	}
	var meta, complete, instant int
	for _, ev := range chrome.TraceEvents {
		switch ev.Phase {
		case "M":
			meta++
		case "X":
			complete++
			if ev.PID == 0 || ev.TID == 0 {
				t.Errorf("X event %q missing pid/tid", ev.Name)
			}
		case "i":
			instant++
		}
	}
	if meta != 1 || complete != 2 || instant != 1 {
		t.Fatalf("chrome events M=%d X=%d i=%d, want 1/2/1", meta, complete, instant)
	}

	// POST push path.
	body := fmt.Sprintf(`{"spans":[{"trace_id":%q,"span_id":"aaaaaaaaaaaaaaaa","service":"cli","name":"client.op"}]}`, id)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", strings.NewReader(body)))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"accepted":1`) {
		t.Fatalf("push: status %d body %s", rec.Code, rec.Body.String())
	}
	got, _ := tr.TraceByID(id)
	if len(got.Spans) != 3 {
		t.Fatalf("after push: %d spans, want 3", len(got.Spans))
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", strings.NewReader("{")))
	if rec.Code != 400 {
		t.Fatalf("bad payload status %d, want 400", rec.Code)
	}
}

func TestLoggerTraceStamping(t *testing.T) {
	tr := newTestTracer(1, 4)
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx, sp := tr.StartSpan(context.Background(), "op")
	lg.InfoContext(ctx, "hello", slog.String("k", "v"))
	lg.Info("no span here")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("log line not JSON: %v", err)
	}
	if first["trace_id"] != sp.TraceIDString() || first["span_id"] != sp.SpanID().String() {
		t.Fatalf("log line %v missing trace stamp %s/%s", first, sp.TraceIDString(), sp.SpanID())
	}
	if strings.Contains(lines[1], "trace_id") {
		t.Fatalf("spanless log line stamped anyway: %s", lines[1])
	}

	// Level gating and bad flag values.
	if _, err := NewLogger(&buf, "json", "nope"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
	buf.Reset()
	quiet, _ := NewLogger(&buf, "text", "error")
	quiet.Info("dropped")
	quiet.Error("kept")
	if out := buf.String(); strings.Contains(out, "dropped") || !strings.Contains(out, "kept") {
		t.Fatalf("level gating broken: %q", out)
	}
}
