package core

import (
	"sync"
	"testing"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// A trained model must serve similarity queries and session profiles from
// many goroutines at once (the back-end profiles every reporting user
// concurrently).
func TestModelConcurrentQueries(t *testing.T) {
	rng := stats.NewRNG(71)
	corpus, ta, _ := topicCorpus(rng, 8, 200, 10)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := m.MostSimilar(ta[(g+i)%len(ta)], 3); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestProfilerConcurrentSessions(t *testing.T) {
	rng := stats.NewRNG(73)
	corpus, ta, tb := topicCorpus(rng, 10, 300, 10)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tax := ontology.NewTaxonomy()
	ont := ontology.New(tax)
	for i := 0; i < 5; i++ {
		va := tax.NewVector()
		va[0] = 1
		ont.Add(ta[i], va)
		vb := tax.NewVector()
		vb[1] = 1
		ont.Add(tb[i], vb)
	}
	p := NewProfiler(m, ont, ProfilerConfig{N: 20})
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				session := []string{ta[(g+i)%len(ta)], tb[(g+2*i)%len(tb)]}
				if _, err := p.ProfileSession(session); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
