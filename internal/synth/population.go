package synth

import (
	"hostprof/internal/stats"
	"hostprof/internal/trace"
)

// User is a synthetic participant with a ground-truth interest profile
// over top-level topics (sparse; sums to 1). The click model and the
// profile-quality metrics evaluate against this ground truth.
type User struct {
	ID        int
	Interests []float64 // length = taxonomy.NumTops()
}

// TopInterests returns the topic indices with non-zero interest.
func (u User) TopInterests() []int {
	var out []int
	for ti, w := range u.Interests {
		if w > 0 {
			out = append(out, ti)
		}
	}
	return out
}

// PopulationConfig sizes the user population and its browsing behaviour.
type PopulationConfig struct {
	// Users is the number of participants. Default 100.
	Users int
	// InterestsMin/Max bound the number of topics a user cares about.
	// Defaults 2..5.
	InterestsMin, InterestsMax int
	// Days of observation. Default 7.
	Days int
	// SessionsPerDay is the Poisson mean of browsing sessions per user
	// per day. Default 3.
	SessionsPerDay float64
	// PagesMin/Max bound the number of pages per session. Defaults 4..16.
	PagesMin, PagesMax int
	// PopularBias is the probability a page visit targets a globally
	// popular site regardless of the session topic; this creates the
	// hostname "cores" of Figure 2. Default 0.35.
	PopularBias float64
	// TrackersPerPage is the Poisson mean of tracker requests fired per
	// page. Default 1.5 (≈8% of connections, paper Section 5.4).
	TrackersPerPage float64
	// LateJoinFrac is the fraction of users who install mid-study and
	// only start browsing from a uniformly random later day — the paper
	// saw installs continue after recruitment closed (1000 → 1329,
	// Section 5.2). Default 0 (everyone present from day 0).
	LateJoinFrac float64
	// Seed drives all behaviour randomness.
	Seed uint64
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.Users <= 0 {
		c.Users = 100
	}
	if c.InterestsMin <= 0 {
		c.InterestsMin = 2
	}
	if c.InterestsMax < c.InterestsMin {
		c.InterestsMax = c.InterestsMin + 3
	}
	if c.Days <= 0 {
		c.Days = 7
	}
	if c.SessionsPerDay <= 0 {
		c.SessionsPerDay = 3
	}
	if c.PagesMin <= 0 {
		c.PagesMin = 4
	}
	if c.PagesMax < c.PagesMin {
		c.PagesMax = c.PagesMin + 12
	}
	if c.PopularBias <= 0 {
		c.PopularBias = 0.35
	}
	if c.TrackersPerPage <= 0 {
		c.TrackersPerPage = 1.5
	}
	return c
}

// Population is a set of users bound to a universe, able to generate
// browsing traces.
type Population struct {
	Config   PopulationConfig
	Universe *Universe
	Users    []User

	// topicSites indexes sites by dominant topic, with per-topic
	// popularity samplers.
	topicSites    [][]int
	topicSamplers []*stats.Weighted
	globalSampler *stats.Weighted
	rng           *stats.RNG
}

// NewPopulation creates users with sparse Dirichlet interest profiles.
func NewPopulation(u *Universe, cfg PopulationConfig) *Population {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed ^ 0xa5a5a5a5)
	p := &Population{
		Config:   cfg,
		Universe: u,
		rng:      rng,
	}

	nTops := u.Tax.NumTops()
	// Index sites per topic.
	p.topicSites = make([][]int, nTops)
	for _, s := range u.Sites {
		p.topicSites[s.Top] = append(p.topicSites[s.Top], s.ID)
	}
	p.topicSamplers = make([]*stats.Weighted, nTops)
	for ti, sites := range p.topicSites {
		if len(sites) == 0 {
			continue
		}
		w := make([]float64, len(sites))
		for i, sid := range sites {
			w[i] = u.Popularity[sid]
		}
		p.topicSamplers[ti] = stats.NewWeighted(rng.Split(), w)
	}
	p.globalSampler = stats.NewWeighted(rng.Split(), u.Popularity)

	// Users: pick k topics (only topics that actually have sites),
	// Dirichlet weights among them.
	var populated []int
	for ti, sites := range p.topicSites {
		if len(sites) > 0 {
			populated = append(populated, ti)
		}
	}
	for id := 0; id < cfg.Users; id++ {
		k := cfg.InterestsMin + rng.Intn(cfg.InterestsMax-cfg.InterestsMin+1)
		if k > len(populated) {
			k = len(populated)
		}
		perm := rng.Perm(len(populated))
		interests := make([]float64, nTops)
		alpha := make([]float64, k)
		for i := range alpha {
			alpha[i] = 1
		}
		weights := make([]float64, k)
		rng.Dirichlet(alpha, weights)
		for i := 0; i < k; i++ {
			interests[populated[perm[i]]] = weights[i]
		}
		p.Users = append(p.Users, User{ID: id, Interests: interests})
	}
	return p
}

// Browse simulates the configured number of days of browsing for every
// user and returns the resulting trace of hostname requests.
func (p *Population) Browse() *trace.Trace {
	tr := trace.New(nil)
	for _, user := range p.Users {
		p.browseUser(user, tr)
	}
	return tr
}

// browseUser emits all visits of one user across the observation period.
func (p *Population) browseUser(user User, tr *trace.Trace) {
	cfg := p.Config
	interest := stats.NewWeighted(p.rng.Split(), softenInterests(user.Interests))
	firstDay := 0
	if cfg.LateJoinFrac > 0 && p.rng.Float64() < cfg.LateJoinFrac && cfg.Days > 1 {
		firstDay = 1 + p.rng.Intn(cfg.Days-1)
	}
	for day := firstDay; day < cfg.Days; day++ {
		sessions := p.rng.Poisson(cfg.SessionsPerDay)
		for s := 0; s < sessions; s++ {
			// Session start between 07:00 and 23:00.
			start := int64(day)*86400 + 7*3600 + int64(p.rng.Intn(16*3600))
			p.browseSession(user, interest, start, tr)
		}
	}
}

// softenInterests mixes a little uniform mass over the user's own topics
// so the Weighted sampler never sees an all-zero vector.
func softenInterests(in []float64) []float64 {
	out := make([]float64, len(in))
	any := false
	for i, w := range in {
		out[i] = w
		if w > 0 {
			any = true
		}
	}
	if !any {
		for i := range out {
			out[i] = 1
		}
	}
	return out
}

// browseSession emits the page visits of one topic-coherent session.
func (p *Population) browseSession(user User, interest *stats.Weighted, start int64, tr *trace.Trace) {
	cfg := p.Config
	topic := interest.Draw()
	pages := cfg.PagesMin + p.rng.Intn(cfg.PagesMax-cfg.PagesMin+1)
	now := start
	for pg := 0; pg < pages; pg++ {
		var siteID int
		if p.rng.Bool(cfg.PopularBias) || p.topicSamplers[topic] == nil {
			siteID = p.globalSampler.Draw()
		} else {
			siteID = p.topicSites[topic][p.topicSamplers[topic].Draw()]
		}
		p.visitPage(user.ID, siteID, now, tr)
		// Dwell time between pages: 20–140 s.
		now += 20 + int64(p.rng.Intn(121))
	}
}

// visitPage emits the primary host plus the automatic sub-requests a real
// page load produces: per-site support hosts, shared CDN nodes and
// trackers, all within ~2 s of the page request. This is exactly the
// co-request structure SKIPGRAM exploits to label API/CDN hostnames.
func (p *Population) visitPage(userID, siteID int, at int64, tr *trace.Trace) {
	u := p.Universe
	site := &u.Sites[siteID]
	tr.Append(trace.Visit{User: userID, Time: at, Host: u.Hosts[site.Host].Name})
	t := at
	for _, hid := range site.Support {
		if p.rng.Bool(0.8) { // most, not all, support hosts fire each load
			t++
			tr.Append(trace.Visit{User: userID, Time: t, Host: u.Hosts[hid].Name})
		}
	}
	for _, hid := range site.SharedCDN {
		if p.rng.Bool(0.7) {
			t++
			tr.Append(trace.Visit{User: userID, Time: t, Host: u.Hosts[hid].Name})
		}
	}
	nTrack := p.rng.Poisson(p.Config.TrackersPerPage)
	for k := 0; k < nTrack; k++ {
		hid := u.TrackerIDs[p.rng.Intn(len(u.TrackerIDs))]
		t++
		tr.Append(trace.Visit{User: userID, Time: t, Host: u.Hosts[hid].Name})
	}
}

// AffinityTo returns the ground-truth affinity of user u to a top-level
// topic distribution (e.g. of an ad): the inner product of the user's
// interest vector with the distribution. Used by the click model.
func (u User) AffinityTo(topicWeights []float64) float64 {
	var s float64
	for ti, w := range topicWeights {
		if ti < len(u.Interests) {
			s += u.Interests[ti] * w
		}
	}
	return s
}
