package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/synth"
	"hostprof/internal/trace"
)

// TestDistributedTraceRoundTrip is the tracing acceptance test: one
// traced CLI round trip (retrain + report) against a live backend must
// produce a single trace in the server's /debug/traces holding the
// client span, the HTTP handler spans, the store/profile stages and the
// training span — all under one trace ID.
func TestDistributedTraceRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	srvTr := tracer.New(tracer.Config{Service: "hostprof-serve", SampleRate: 1, BufferTraces: 32, Metrics: reg, Seed: 3})
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.Tracer = srvTr
		cfg.SlowRequest = -1 // keep the log quiet in this test
	})
	seedVisits(t, fx)

	cliTr := tracer.New(tracer.Config{Service: "hostprof-cli", SampleRate: 1, BufferTraces: 8, Seed: 4})
	ext := &Extension{BaseURL: fx.srv.URL, User: 0, Tracer: cliTr}

	ctx, root := cliTr.StartSpan(context.Background(), "cli.report")
	if err := ext.RetrainContext(ctx); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	site := fx.u.Hosts[fx.u.Sites[0].Host].Name
	support := fx.u.Hosts[fx.u.Sites[0].Support[0]].Name
	if _, err := ext.ReportContext(ctx, 10_000_000, []string{site, support}); err != nil {
		t.Fatalf("report: %v", err)
	}
	root.End()
	traceID := root.TraceIDString()

	// Push the client half so the server-side trace is complete.
	var clientSpans []tracer.SpanData
	for _, tj := range cliTr.Traces() {
		clientSpans = append(clientSpans, tj.Spans...)
	}
	if err := ext.PushTrace(context.Background(), clientSpans); err != nil {
		t.Fatalf("push trace: %v", err)
	}

	// The merged trace must be readable over HTTP, not just in memory.
	resp, err := http.Get(fx.srv.URL + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces?trace=%s → %d: %s", traceID, resp.StatusCode, raw)
	}

	got, ok := srvTr.TraceByID(traceID)
	if !ok {
		t.Fatalf("server did not retain trace %s", traceID)
	}
	names := map[string]string{} // span name → service
	for _, sd := range got.Spans {
		if sd.TraceID != traceID {
			t.Fatalf("span %s carries trace %s, want %s", sd.Name, sd.TraceID, traceID)
		}
		names[sd.Name] = sd.Service
	}
	for span, svc := range map[string]string{
		"cli.report":    "hostprof-cli",
		"client.report": "hostprof-cli",
		"http.report":   "hostprof-serve",
		"http.retrain":  "hostprof-serve",
		"store.ingest":  "hostprof-serve",
		"store.session": "hostprof-serve",
		"profile":       "hostprof-serve",
		"ads.select":    "hostprof-serve",
		"train.retrain": "hostprof-serve",
	} {
		if names[span] != svc {
			t.Errorf("trace missing span %s (service %s); spans: %v", span, svc, names)
		}
	}

	// The same trace exports as Chrome trace-event JSON.
	resp, err = http.Get(fx.srv.URL + "/debug/traces?trace=" + traceID + "&format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(raw, []byte(`"traceEvents"`)) || !bytes.Contains(raw, []byte(`"ph":"X"`)) {
		t.Fatalf("chrome export malformed: %s", raw[:min(len(raw), 200)])
	}
}

// TestSlowRequestLog: a request over the SlowRequest threshold emits
// exactly one structured warning carrying the trace ID, endpoint and
// per-stage breakdown.
func TestSlowRequestLog(t *testing.T) {
	reg := obs.NewRegistry()
	srvTr := tracer.New(tracer.Config{Service: "hostprof-serve", SampleRate: 1, BufferTraces: 8, Seed: 5})
	var logBuf bytes.Buffer
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.Tracer = srvTr
		cfg.SlowRequest = time.Nanosecond // every request is "slow"
		cfg.Logger = slog.New(tracer.WithTraceIDs(slog.NewJSONHandler(&logBuf, nil)))
	})
	seedVisits(t, fx)
	if err := fx.b.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	logBuf.Reset() // drop retrain logs; we want the request warning

	site := fx.u.Hosts[fx.u.Sites[0].Host].Name
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if _, err := ext.Report(10_000_000, []string{site}); err != nil {
		t.Fatalf("report: %v", err)
	}

	out := logBuf.String()
	if !strings.Contains(out, `"msg":"slow request"`) {
		t.Fatalf("no slow-request warning in log: %s", out)
	}
	for _, want := range []string{`"level":"WARN"`, `"endpoint":"report"`, `"trace_id":"`, `"stages":"store.ingest=`} {
		if !strings.Contains(out, want) {
			t.Errorf("slow-request log missing %s: %s", want, out)
		}
	}
}

// TestLatencyExemplarScrape: after a traced request, an OpenMetrics
// scrape of /metrics carries the request's trace ID as an exemplar on
// the latency histogram.
func TestLatencyExemplarScrape(t *testing.T) {
	reg := obs.NewRegistry()
	srvTr := tracer.New(tracer.Config{Service: "hostprof-serve", SampleRate: 1, BufferTraces: 8, Metrics: reg, Seed: 6})
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.Tracer = srvTr
		cfg.SlowRequest = -1
	})

	cliTr := tracer.New(tracer.Config{Service: "hostprof-cli", SampleRate: 1, BufferTraces: 8, Seed: 7})
	ext := &Extension{BaseURL: fx.srv.URL, User: 0, Tracer: cliTr}
	ctx, root := cliTr.StartSpan(context.Background(), "cli.report")
	// Untrained backend: 503 is fine, the latency histogram observes it
	// either way.
	ext.ReportContext(ctx, 1, []string{"a.example"})
	root.End()

	req, _ := http.NewRequest("GET", fx.srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	want := fmt.Sprintf(`# {trace_id="%s"}`, root.TraceIDString())
	if !bytes.Contains(body, []byte(want)) {
		t.Fatalf("scrape missing exemplar %s in:\n%s", want, body)
	}
	if !bytes.HasSuffix(body, []byte("# EOF\n")) {
		t.Fatal("OpenMetrics scrape missing # EOF")
	}
}

// newBenchBackend builds a small trained backend for the report-path
// benchmarks.
func newBenchBackend(b *testing.B, tr *tracer.Tracer) (*Backend, []string) {
	b.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	bk, err := New(Config{
		Ontology:    ont,
		AdDB:        db,
		Train:       core.TrainConfig{Dim: 16, Epochs: 2, MinCount: 1, Workers: 1, Seed: 11, Subsample: -1},
		Profile:     core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		Tracer:      tr,
		SlowRequest: -1,
		Logger:      slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	if err != nil {
		b.Fatal(err)
	}
	pop := synth.NewPopulation(u, synth.PopulationConfig{Users: 8, Days: 2, Seed: 13})
	for _, v := range pop.Browse().Visits() {
		if err := bk.store.Append(trace.Visit{User: v.User, Time: v.Time, Host: v.Host}); err != nil {
			b.Fatal(err)
		}
	}
	if err := bk.Retrain(); err != nil {
		b.Fatal(err)
	}
	hosts := []string{u.Hosts[u.Sites[0].Host].Name, u.Hosts[u.Sites[0].Support[0]].Name}
	return bk, hosts
}

// BenchmarkReportIngest compares the full report path traced (rate 1)
// against untraced (nil tracer) — the difference is the tracer's
// per-request cost; the untraced variant is the zero-overhead baseline
// the cost contract promises.
func BenchmarkReportIngest(b *testing.B) {
	b.Run("untraced", func(b *testing.B) {
		bk, hosts := newBenchBackend(b, nil)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := bk.report(ctx, 0, int64(20_000_000+i), hosts); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("traced", func(b *testing.B) {
		tr := tracer.New(tracer.Config{Service: "bench", SampleRate: 1, BufferTraces: 16, Seed: 9})
		bk, hosts := newBenchBackend(b, tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, sp := tr.StartSpan(context.Background(), "http.report")
			if _, err := bk.report(ctx, 0, int64(20_000_000+i), hosts); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
	})
	b.Run("disabled", func(b *testing.B) {
		// Tracer constructed but sampling off: the cost must collapse to
		// nil checks.
		tr := tracer.New(tracer.Config{Service: "bench", SampleRate: 0})
		bk, hosts := newBenchBackend(b, tr)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ctx, sp := tr.StartSpan(context.Background(), "http.report")
			if _, err := bk.report(ctx, 0, int64(20_000_000+i), hosts); err != nil {
				b.Fatal(err)
			}
			sp.End()
		}
	})
}
