package prof

import (
	"bytes"
	"log/slog"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/obs"
)

// Config assembles a Profiler.
type Config struct {
	// Interval is the background capture cadence; each cycle records a
	// CPU profile plus heap/mutex/block/goroutine snapshots into the
	// ring. Zero selects 1 minute; negative disables the background
	// loop (trigger captures still work).
	Interval time.Duration
	// CPUDuration is the CPU-profile window per cycle. Zero selects 5s;
	// it is clamped below Interval so cycles never overlap.
	CPUDuration time.Duration
	// MaxCaptures / MaxBytes cap the ring (defaults 64 / 32 MiB).
	MaxCaptures int
	MaxBytes    int64
	// MutexFraction is passed to runtime.SetMutexProfileFraction: 1/n
	// of contention events are sampled. Zero selects 5 (cheap,
	// production-safe); negative leaves the runtime setting untouched.
	MutexFraction int
	// BlockRate is passed to runtime.SetBlockProfileRate, in
	// nanoseconds blocked per sample. Zero selects 10µs; negative
	// leaves the runtime setting untouched.
	BlockRate int
	// TriggerCooldown is the minimum gap between slow-request trigger
	// captures, bounding capture storms when every request is slow.
	// Zero selects 10s; negative disables the cooldown (tests).
	TriggerCooldown time.Duration
	// Metrics, when non-nil, receives hostprof_prof_* series.
	Metrics *obs.Registry
	// Logger receives capture errors. Nil selects slog.Default().
	Logger *slog.Logger
}

// A Profiler owns the capture ring and the background capture loop.
// All methods are safe for concurrent use and on a nil receiver; a nil
// Profiler is the disabled state and costs a nil check per call site.
type Profiler struct {
	cfg  Config
	ring *Ring
	log  *slog.Logger

	captures  *obs.Counter
	errors    *obs.Counter
	triggers  *obs.Counter
	supressed *obs.Counter

	lastTrigger atomic.Int64 // unix nanos of the last trigger capture

	mu      sync.Mutex
	stop    chan struct{}
	stopped chan struct{}
}

// New builds a Profiler, applies the mutex/block sampling rates to the
// runtime, and starts the background loop (unless Interval < 0). Call
// Stop to halt the loop.
func New(cfg Config) *Profiler {
	if cfg.Interval == 0 {
		cfg.Interval = time.Minute
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.Interval > 0 && cfg.CPUDuration > cfg.Interval/2 {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = 5
	}
	if cfg.BlockRate == 0 {
		cfg.BlockRate = 10_000
	}
	if cfg.TriggerCooldown == 0 {
		cfg.TriggerCooldown = 10 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.MutexFraction > 0 {
		runtime.SetMutexProfileFraction(cfg.MutexFraction)
	}
	if cfg.BlockRate > 0 {
		runtime.SetBlockProfileRate(cfg.BlockRate)
	}
	p := &Profiler{
		cfg:  cfg,
		ring: NewRing(cfg.MaxCaptures, cfg.MaxBytes),
		log:  cfg.Logger,
	}
	if reg := cfg.Metrics; reg != nil {
		reg.Describe("hostprof_prof_captures_total", "profiles captured into the ring")
		reg.Describe("hostprof_prof_capture_errors_total", "profile captures that failed")
		reg.Describe("hostprof_prof_triggers_total", "slow-request trigger captures")
		reg.Describe("hostprof_prof_triggers_suppressed_total", "trigger captures skipped inside the cooldown window")
		reg.Describe("hostprof_prof_ring_captures", "profiles currently retained in the ring")
		reg.Describe("hostprof_prof_ring_bytes", "total pprof bytes retained in the ring")
		p.captures = reg.Counter("hostprof_prof_captures_total")
		p.errors = reg.Counter("hostprof_prof_capture_errors_total")
		p.triggers = reg.Counter("hostprof_prof_triggers_total")
		p.supressed = reg.Counter("hostprof_prof_triggers_suppressed_total")
		reg.GaugeFunc("hostprof_prof_ring_captures", func() float64 { return float64(p.ring.Len()) })
		reg.GaugeFunc("hostprof_prof_ring_bytes", func() float64 { return float64(p.ring.Bytes()) })
	}
	if cfg.Interval > 0 {
		p.stop = make(chan struct{})
		p.stopped = make(chan struct{})
		go p.loop()
	}
	return p
}

// Enabled reports whether the profiler can capture. Safe on nil.
func (p *Profiler) Enabled() bool { return p != nil }

// Ring returns the capture ring (nil on a nil profiler).
func (p *Profiler) Ring() *Ring {
	if p == nil {
		return nil
	}
	return p.ring
}

// Stop halts the background loop and waits for an in-flight cycle
// (including its CPU window) to finish. Idempotent; safe on nil.
func (p *Profiler) Stop() {
	if p == nil || p.stop == nil {
		return
	}
	p.mu.Lock()
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	p.mu.Unlock()
	<-p.stopped
}

// loop is the background capture cycle: one CPU window plus the named
// snapshots, then sleep out the remainder of the interval.
func (p *Profiler) loop() {
	defer close(p.stopped)
	for {
		select {
		case <-p.stop:
			return
		default:
		}
		start := time.Now()
		p.captureCPU(p.cfg.CPUDuration)
		for _, kind := range []string{"heap", "mutex", "block", "goroutine"} {
			p.CaptureNamed(kind, "interval", "")
		}
		rest := p.cfg.Interval - time.Since(start)
		if rest < time.Second {
			rest = time.Second
		}
		select {
		case <-p.stop:
			return
		case <-time.After(rest):
		}
	}
}

// captureCPU records one CPU-profile window into the ring. CPU
// profiling is process-global and exclusive; a concurrent
// StartCPUProfile (e.g. /debug/pprof/profile) makes this cycle's CPU
// capture a logged no-op rather than an error worth waking anyone for.
func (p *Profiler) captureCPU(d time.Duration) {
	var buf bytes.Buffer
	if err := pprof.StartCPUProfile(&buf); err != nil {
		p.errors.Inc()
		p.log.Debug("cpu profile unavailable", slog.String("error", err.Error()))
		return
	}
	select {
	case <-p.stop:
	case <-time.After(d):
	}
	pprof.StopCPUProfile()
	p.captures.Inc()
	p.ring.Add(Capture{Kind: "cpu", Reason: "interval", Bytes: buf.Bytes()})
}

// CaptureNamed snapshots one named runtime profile ("heap", "allocs",
// "mutex", "block", "goroutine", ...) into the ring, tagged with the
// given reason and optional trace ID, and returns the capture ID (0 on
// failure or nil receiver).
func (p *Profiler) CaptureNamed(kind, reason, traceID string) uint64 {
	if p == nil {
		return 0
	}
	prof := pprof.Lookup(kind)
	if prof == nil {
		p.errors.Inc()
		p.log.Warn("unknown profile kind", slog.String("kind", kind))
		return 0
	}
	var buf bytes.Buffer
	// debug=0 writes the gzipped protobuf `go tool pprof` wants.
	if err := prof.WriteTo(&buf, 0); err != nil {
		p.errors.Inc()
		p.log.Warn("profile capture failed",
			slog.String("kind", kind), slog.String("error", err.Error()))
		return 0
	}
	p.captures.Inc()
	return p.ring.Add(Capture{Kind: kind, Reason: reason, TraceID: traceID, Bytes: buf.Bytes()})
}

// CaptureSlow is the slow-request hook: it snapshots the goroutine and
// mutex profiles tagged with the offending request's trace ID, so the
// /debug/traces entry links to evidence of what the process was doing
// at breach time. Captures inside the cooldown window are suppressed
// (returning nil) to bound cost when every request is slow. Safe on a
// nil receiver — the disabled path is one nil check, no allocation.
func (p *Profiler) CaptureSlow(traceID string) []uint64 {
	if p == nil {
		return nil
	}
	now := time.Now().UnixNano()
	last := p.lastTrigger.Load()
	if now-last < int64(p.cfg.TriggerCooldown) || !p.lastTrigger.CompareAndSwap(last, now) {
		p.supressed.Inc()
		return nil
	}
	p.triggers.Inc()
	ids := make([]uint64, 0, 2)
	for _, kind := range []string{"goroutine", "mutex"} {
		if id := p.CaptureNamed(kind, "slow-request", traceID); id != 0 {
			ids = append(ids, id)
		}
	}
	return ids
}
