//go:build race

package core

// raceDetectorEnabled reports whether this binary was built with the race
// detector. Hogwild training intentionally lets workers race on the
// shared weight matrices (the standard word2vec/gensim scheme — updates
// are sparse and collisions statistically negligible), which the detector
// would flag; under -race, Train falls back to a single worker so the
// rest of the test suite stays meaningfully checkable.
const raceDetectorEnabled = true
