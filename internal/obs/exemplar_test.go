package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHistogramExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("req_seconds", []float64{1, 10})
	h.ObserveExemplar(0.5, "aaaa")
	h.Observe(5) // no trace: bucket counted, no exemplar
	h.ObserveExemplar(100, "cccc")

	if e := h.exemplar(0); e == nil || e.TraceID != "aaaa" || e.Value != 0.5 {
		t.Fatalf("bucket 0 exemplar = %+v, want trace aaaa value 0.5", e)
	}
	if e := h.exemplar(1); e != nil {
		t.Fatalf("untraced observation produced exemplar %+v", e)
	}
	if e := h.exemplar(2); e == nil || e.TraceID != "cccc" {
		t.Fatalf("+Inf exemplar = %+v, want trace cccc", e)
	}
	// The newest traced observation replaces the bucket's exemplar.
	h.ObserveExemplar(0.7, "bbbb")
	if e := h.exemplar(0); e.TraceID != "bbbb" || e.Value != 0.7 {
		t.Fatalf("exemplar not replaced: %+v", e)
	}

	var om, classic strings.Builder
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&classic); err != nil {
		t.Fatal(err)
	}
	wantLine := `req_seconds_bucket{le="1"} 2 # {trace_id="bbbb"} 0.7 `
	if !strings.Contains(om.String(), wantLine) {
		t.Fatalf("OpenMetrics output missing %q:\n%s", wantLine, om.String())
	}
	if !strings.HasSuffix(om.String(), "# EOF\n") {
		t.Fatalf("OpenMetrics output missing # EOF terminator:\n%s", om.String())
	}
	// Classic scrapers must see neither exemplars nor the EOF marker.
	if strings.Contains(classic.String(), "# {") || strings.Contains(classic.String(), "# EOF") {
		t.Fatalf("Prometheus output leaked OpenMetrics syntax:\n%s", classic.String())
	}

	// The JSON snapshot carries the same exemplars.
	for _, m := range r.Snapshot() {
		if m.Name != "req_seconds" {
			continue
		}
		if m.Buckets[0].Exemplar == nil || m.Buckets[0].Exemplar.TraceID != "bbbb" {
			t.Fatalf("snapshot bucket exemplar = %+v", m.Buckets[0].Exemplar)
		}
		if m.Buckets[1].Exemplar != nil {
			t.Fatalf("snapshot invented exemplar %+v", m.Buckets[1].Exemplar)
		}
	}
}

func TestMetricsHandlerContentNegotiation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1})
	h.ObserveExemplar(0.5, "dddd")

	handler := r.MetricsHandler()
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	handler.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type %q", ct)
	}
	if strings.Contains(rec.Body.String(), "trace_id") {
		t.Fatal("default scrape leaked exemplars")
	}

	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	handler.ServeHTTP(rec, req)
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Fatalf("negotiated content type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `# {trace_id="dddd"}`) || !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics scrape missing exemplar or EOF:\n%s", body)
	}
}
