package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesShedRequests: a 429 + Retry-After answer is retried
// with bounded backoff until the backend admits the request; the caller
// sees one successful call, not three errors.
func TestClientRetriesShedRequests(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	ext := &Extension{
		BaseURL:    srv.URL,
		MaxRetries: 3,
		// Retry-After says 1s; RetryMax bounds it so the test stays fast
		// and a hostile header cannot stall a client.
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Millisecond,
	}
	start := time.Now()
	if err := ext.Feedback(1, "original", false); err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend saw %d calls, want 3", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retries took %s; Retry-After was not bounded by RetryMax", elapsed)
	}
}

// TestClientRetryBudgetExhausted: a persistently shedding backend
// surfaces the final 429 after MaxRetries attempts.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "still overloaded")
	}))
	defer srv.Close()

	ext := &Extension{BaseURL: srv.URL, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}
	err := ext.Feedback(1, "original", false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if got := calls.Load(); got != 3 { // 1 initial + 2 retries
		t.Fatalf("backend saw %d calls, want 3", got)
	}
}

// TestClientDoesNotRetryBare503: 503 without Retry-After is a state
// answer (e.g. model not trained — the report's visits were already
// ingested); blind replay would duplicate them.
func TestClientDoesNotRetryBare503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server: model not trained yet")
	}))
	defer srv.Close()

	ext := &Extension{BaseURL: srv.URL, MaxRetries: 5, RetryBase: time.Millisecond}
	_, err := ext.Report(1, []string{"a.example"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend saw %d calls, want 1 (no retry)", got)
	}
}

// TestClientRetryHonorsContext: cancellation during a retry wait
// returns promptly with the context error.
func TestClientRetryHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}))
	defer srv.Close()

	ext := &Extension{BaseURL: srv.URL, MaxRetries: 10, RetryBase: 50 * time.Millisecond, RetryMax: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := ext.FeedbackContext(ctx, 1, "original", false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestRetryDelay pins the backoff schedule: server-scheduled waits are
// honored exactly but capped; otherwise the wait is equal-jittered
// exponential — uniform in [d/2, d] for d = base<<attempt, never above
// max.
func TestRetryDelay(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	exact := []struct {
		retryAfter string
		attempt    int
		want       time.Duration
	}{
		{"1", 0, time.Second},
		{"60", 0, 2 * time.Second}, // server ask capped
	}
	for _, c := range exact {
		if got := RetryDelay(c.retryAfter, c.attempt, base, max); got != c.want {
			t.Errorf("RetryDelay(%q, %d) = %s, want %s", c.retryAfter, c.attempt, got, c.want)
		}
	}
	jittered := []struct {
		retryAfter string
		attempt    int
		lo, hi     time.Duration
	}{
		{"", 0, 50 * time.Millisecond, 100 * time.Millisecond},
		{"", 1, 100 * time.Millisecond, 200 * time.Millisecond},
		{"", 4, 800 * time.Millisecond, 1600 * time.Millisecond},
		{"", 5, time.Second, 2 * time.Second},  // capped at max before jitter
		{"", 63, time.Second, 2 * time.Second}, // shift overflow guarded
		{"0", 2, 200 * time.Millisecond, 400 * time.Millisecond},
		{"soon", 0, 50 * time.Millisecond, 100 * time.Millisecond}, // unparseable → backoff
	}
	for _, c := range jittered {
		for i := 0; i < 50; i++ {
			got := RetryDelay(c.retryAfter, c.attempt, base, max)
			if got < c.lo || got > c.hi {
				t.Fatalf("RetryDelay(%q, %d) = %s, want in [%s, %s]", c.retryAfter, c.attempt, got, c.lo, c.hi)
			}
		}
	}
	// The jitter must actually vary — a constant answer means the random
	// draw was dropped somewhere.
	seen := make(map[time.Duration]bool)
	for i := 0; i < 200; i++ {
		seen[RetryDelay("", 4, base, max)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("200 draws of RetryDelay produced %d distinct value(s); jitter is not applied", len(seen))
	}
}
