package sniffer

import (
	"errors"
	"testing"
	"testing/quick"

	"hostprof/internal/stats"
)

func TestBuildAndParseSNI(t *testing.T) {
	rng := stats.NewRNG(1)
	for _, host := range []string{
		"example.com",
		"api.bkng.azure.example",
		"a.b.c.d.e.f.example",
		"x.io",
	} {
		rec := BuildClientHello(host, rng)
		got, err := ParseSNI(rec)
		if err != nil {
			t.Fatalf("%s: %v", host, err)
		}
		if got != host {
			t.Fatalf("got %q, want %q", got, host)
		}
	}
}

func TestParseSNINeedMore(t *testing.T) {
	rng := stats.NewRNG(2)
	rec := BuildClientHello("streaming.example", rng)
	for _, cut := range []int{0, 3, 5, 20, len(rec) / 2, len(rec) - 1} {
		if _, err := ParseSNI(rec[:cut]); !errors.Is(err, ErrNeedMore) {
			t.Fatalf("cut=%d: err = %v, want ErrNeedMore", cut, err)
		}
	}
}

func TestParseSNIIncremental(t *testing.T) {
	// Feed the record byte by byte: must return ErrNeedMore until the
	// exact completion point, then succeed.
	rng := stats.NewRNG(3)
	rec := BuildClientHello("inc.example", rng)
	for cut := 0; cut < len(rec); cut++ {
		_, err := ParseSNI(rec[:cut])
		if err == nil {
			t.Fatalf("parsed successfully at cut %d < %d", cut, len(rec))
		}
		if !errors.Is(err, ErrNeedMore) {
			t.Fatalf("cut=%d: %v", cut, err)
		}
	}
	if _, err := ParseSNI(rec); err != nil {
		t.Fatal(err)
	}
}

func TestParseSNINotTLS(t *testing.T) {
	if _, err := ParseSNI([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); !errors.Is(err, ErrNotClientHello) {
		t.Fatalf("err = %v", err)
	}
	// Wrong record version byte.
	bad := []byte{0x16, 0x02, 0x01, 0x00, 0x05, 1, 2, 3, 4, 5}
	if _, err := ParseSNI(bad); !errors.Is(err, ErrNotClientHello) {
		t.Fatalf("err = %v", err)
	}
}

func TestParseSNIFragmentedRecords(t *testing.T) {
	// Split one handshake message across two TLS records, as permitted
	// by RFC 8446 Section 5.1.
	rng := stats.NewRNG(4)
	rec := BuildClientHello("fragmented.example", rng)
	hs := rec[5:]
	cut := len(hs) / 2
	var stream []byte
	for _, part := range [][]byte{hs[:cut], hs[cut:]} {
		stream = append(stream, 0x16, 0x03, 0x01, byte(len(part)>>8), byte(len(part)))
		stream = append(stream, part...)
	}
	got, err := ParseSNI(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got != "fragmented.example" {
		t.Fatalf("got %q", got)
	}
}

func TestParseSNITrailingDataIgnored(t *testing.T) {
	rng := stats.NewRNG(5)
	rec := BuildClientHello("trail.example", rng)
	rec = append(rec, 0x17, 0x03, 0x03, 0x00, 0x02, 0xde, 0xad) // appdata record after
	got, err := ParseSNI(rec)
	if err != nil || got != "trail.example" {
		t.Fatalf("got %q, %v", got, err)
	}
}

func TestParseSNIHandshakeWithoutSNI(t *testing.T) {
	// Build a hello then strip extensions entirely: minimal ClientHello
	// body (version+random+session+suites+compression) with no
	// extensions block.
	body := make([]byte, 0, 64)
	body = append(body, 0x03, 0x03)
	body = append(body, make([]byte, 32)...) // random
	body = append(body, 0)                   // empty session id
	body = append(body, 0x00, 0x02, 0x13, 0x01)
	body = append(body, 1, 0)
	hs := append([]byte{0x01, 0, 0, byte(len(body))}, body...)
	rec := append([]byte{0x16, 0x03, 0x01, 0, byte(len(hs))}, hs...)
	if _, err := ParseSNI(rec); !errors.Is(err, ErrNoSNI) {
		t.Fatalf("err = %v, want ErrNoSNI", err)
	}
}

func TestParseSNIRejectsServerHello(t *testing.T) {
	rng := stats.NewRNG(6)
	rec := BuildClientHello("x.example", rng)
	rec[5] = 0x02 // handshake type ServerHello
	if _, err := ParseSNI(rec); !errors.Is(err, ErrNotClientHello) {
		t.Fatalf("err = %v", err)
	}
}

func TestBuildClientHelloRandomized(t *testing.T) {
	rng := stats.NewRNG(7)
	a := BuildClientHello("same.example", rng)
	b := BuildClientHello("same.example", rng)
	if string(a) == string(b) {
		t.Fatal("client randoms repeat")
	}
	if len(a) != len(b) {
		t.Fatal("layout should be stable for equal SNI length")
	}
}

// Property: any hostname assembled from DNS-safe labels round-trips.
func TestSNIRoundTripQuick(t *testing.T) {
	rng := stats.NewRNG(8)
	f := func(raw []uint8) bool {
		host := ""
		for i, b := range raw {
			if i >= 6 {
				break
			}
			if i > 0 {
				host += "."
			}
			host += string(rune('a'+b%26)) + string(rune('a'+(b>>4)%16))
		}
		if host == "" {
			host = "h.example"
		}
		rec := BuildClientHello(host, rng)
		got, err := ParseSNI(rec)
		return err == nil && got == host
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
