package store

import (
	"encoding/binary"
	"hash/fnv"

	"hostprof/internal/trace"
)

// This file is the store's keyspace-migration surface: chunked per-user
// reads with stable offsets, an order-insensitive content digest, and
// user removal. Together they let a gateway stream one user's history to
// another shard, verify the copy without requiring identical arrival
// order, and retire the source copy once routing has cut over.

// UserVisits returns up to limit of the user's visits starting at offset
// from within the user's stored subsequence, plus the subsequence's
// current total length. Offsets are stable: a user's visits live in one
// shard and are only ever appended (DropUsers removes whole users, never
// a prefix), so visits[0:from] never changes between calls — the
// property that makes an export watermark resumable across chunks and
// across exporter restarts. limit <= 0 means no limit.
func (s *Store) UserVisits(user int, from, limit int) ([]trace.Visit, int) {
	if from < 0 {
		from = 0
	}
	sh := &s.shards[s.shardOf(user)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	total := 0
	var out []trace.Visit
	for _, v := range sh.visits {
		if v.User != user {
			continue
		}
		if total >= from && (limit <= 0 || len(out) < limit) {
			out = append(out, v)
		}
		total++
	}
	return out, total
}

// UserDigest summarizes one user's stored history as a record count and
// an order-insensitive multiset digest (the sum of each visit's content
// hash). Two stores hold identical histories for the user iff both
// values match — regardless of arrival order, which differs between a
// store fed by live traffic and one fed by a migration copy interleaved
// with double-writes.
func (s *Store) UserDigest(user int) (count int, sum uint64) {
	sh := &s.shards[s.shardOf(user)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, v := range sh.visits {
		if v.User != user {
			continue
		}
		count++
		sum += VisitHash(v)
	}
	return count, sum
}

// DropUsers removes every visit belonging to the given users, returning
// the number of visits removed. The removal is memory-only — the WAL
// holds no tombstones — so callers that need the drop to survive a crash
// must Snapshot afterwards; until then a replay resurrects the dropped
// records. The migration protocol tolerates that: a resurrected target
// fails the pre-cutover digest handshake and is simply reset and
// recopied.
func (s *Store) DropUsers(users []int) int {
	if len(users) == 0 {
		return 0
	}
	drop := make(map[int]bool, len(users))
	for _, u := range users {
		drop[u] = true
	}
	s.gate.RLock()
	defer s.gate.RUnlock()
	removed := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		kept := sh.visits[:0]
		for _, v := range sh.visits {
			if drop[v.User] {
				removed++
				continue
			}
			kept = append(kept, v)
		}
		sh.visits = kept
		sh.mu.Unlock()
	}
	return removed
}

// VisitHash is the content hash behind UserDigest: FNV-1a over the
// visit's time and hostname, finalized with a multiply-xorshift mixer so
// near-identical visits (same host, adjacent timestamps) contribute
// uncorrelated terms to the digest sum. The user ID is deliberately
// excluded — digests are always compared per user.
func VisitHash(v trace.Visit) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v.Time))
	h.Write(buf[:])
	h.Write([]byte(v.Host))
	x := h.Sum64()
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
