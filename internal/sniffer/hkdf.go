package sniffer

import (
	"crypto/hmac"
	"crypto/sha256"
)

// hkdfExtract implements HKDF-Extract (RFC 5869) with SHA-256.
func hkdfExtract(salt, ikm []byte) []byte {
	mac := hmac.New(sha256.New, salt)
	mac.Write(ikm)
	return mac.Sum(nil)
}

// hkdfExpand implements HKDF-Expand (RFC 5869) with SHA-256.
func hkdfExpand(prk, info []byte, length int) []byte {
	out := make([]byte, 0, length)
	var t []byte
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, prk)
		mac.Write(t)
		mac.Write(info)
		mac.Write([]byte{counter})
		t = mac.Sum(nil)
		out = append(out, t...)
	}
	return out[:length]
}

// hkdfExpandLabel implements the TLS 1.3 HKDF-Expand-Label construction
// (RFC 8446 Section 7.1) used by QUIC for key derivation.
func hkdfExpandLabel(secret []byte, label string, context []byte, length int) []byte {
	full := "tls13 " + label
	info := make([]byte, 0, 4+len(full)+len(context))
	info = append(info, byte(length>>8), byte(length))
	info = append(info, byte(len(full)))
	info = append(info, full...)
	info = append(info, byte(len(context)))
	info = append(info, context...)
	return hkdfExpand(secret, info, length)
}
