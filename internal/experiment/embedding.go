package experiment

import (
	"fmt"
	"sort"
	"strings"

	"hostprof/internal/core"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
	"hostprof/internal/tsne"
)

// SecondLevelDomain collapses a hostname to its last two labels, the
// readability device of paper Section 6.2 (mail.google.com → google.com).
func SecondLevelDomain(host string) string {
	parts := strings.Split(host, ".")
	if len(parts) <= 2 {
		return host
	}
	return strings.Join(parts[len(parts)-2:], ".")
}

// EmbeddingPoint is one hostname's 2-D position with its ground truth.
type EmbeddingPoint struct {
	Host string
	// Topic is the dominant ground-truth top-level topic, or -1 for
	// infrastructure hosts with no topical identity.
	Topic int
	X, Y  float64
}

// Fig4Result is the t-SNE map of Figure 4.
type Fig4Result struct {
	Points []EmbeddingPoint
	// Purity2D is the mean fraction of each labelled point's 10
	// nearest 2-D neighbours sharing its topic.
	Purity2D float64
	// KL is the t-SNE objective KL(P||Q) of the final layout — the
	// map's faithfulness to the high-dimensional structure.
	KL float64
}

// Fig4TSNE reproduces Figure 4: train-day embeddings, collapsed to
// second-level domains, reduced to 2-D with t-SNE. day selects the
// training day (the paper used a single day for legibility); iterations
// bound the optimizer.
func Fig4TSNE(s *Setup, day, iterations int) (Fig4Result, error) {
	seqs := s.Filtered.DailySequences(day)
	if len(seqs) == 0 {
		return Fig4Result{}, fmt.Errorf("experiment: no sequences on day %d", day)
	}
	// Collapse to second-level domains, as Section 6.2 does.
	collapsed := make([][]string, len(seqs))
	for i, seq := range seqs {
		out := make([]string, len(seq))
		for j, h := range seq {
			out[j] = SecondLevelDomain(h)
		}
		collapsed[i] = out
	}
	cfg := s.Config.Train
	cfg.MinCount = 2
	// A single synthetic day carries far less traffic than the paper's
	// (their one-day cut still reflected millions of connections), so
	// compensate with extra passes.
	cfg.Epochs *= 4
	model, err := core.Train(collapsed, cfg)
	if err != nil {
		return Fig4Result{}, fmt.Errorf("experiment: fig4 training: %w", err)
	}

	n := model.Vocab().Len()
	vecs := make([][]float64, n)
	topics := make([]int, n)
	hosts := make([]string, n)
	for id := 0; id < n; id++ {
		vecs[id] = model.VectorByID(id)
		hosts[id] = model.Vocab().Host(id)
		topics[id] = s.topicOf2LD(hosts[id])
	}
	coords, err := tsne.Embed(vecs, tsne.Config{
		Iterations: iterations,
		Seed:       s.Config.Seed + 41,
	})
	if err != nil {
		return Fig4Result{}, fmt.Errorf("experiment: fig4 t-SNE: %w", err)
	}
	res := Fig4Result{Points: make([]EmbeddingPoint, n)}
	for i := range coords {
		res.Points[i] = EmbeddingPoint{
			Host: hosts[i], Topic: topics[i],
			X: coords[i][0], Y: coords[i][1],
		}
	}
	res.Purity2D = tsne.NeighbourPurity(coords, topics, 10)
	if kl, err := tsne.Divergence(vecs, coords, 0); err == nil {
		res.KL = kl
	}
	return res, nil
}

// topicOf2LD maps a second-level domain back to a ground-truth topic by
// checking the site host carrying that 2LD (support hosts collapse onto
// their site's 2LD by construction).
func (s *Setup) topicOf2LD(domain string) int {
	if h, ok := s.Universe.HostByName(domain); ok {
		if site := s.Universe.SiteOfHost(h.ID); site != nil {
			return site.Top
		}
	}
	return -1
}

// Rows renders the figure-4 result.
func (r Fig4Result) Rows() []Row {
	labelled := 0
	for _, p := range r.Points {
		if p.Topic >= 0 {
			labelled++
		}
	}
	return []Row{{
		ID:    "FIG4",
		Name:  "t-SNE map of hostname embeddings",
		Paper: "2-D map of one day's second-level-domain embeddings shows topical clusters",
		Measured: fmt.Sprintf("%d points (%d topic-labelled), 10-NN topic purity %.2f, KL %.2f",
			len(r.Points), labelled, r.Purity2D, r.KL),
		Criterion: "purity well above chance (~1/34 ≈ 0.03)",
		Pass:      r.Purity2D > 0.15 && len(r.Points) > 0,
	}}
}

// Fig5Result quantifies Figure 5's cluster examples: per-topic purity of
// embedding neighbourhoods in the full d-dimensional space.
type Fig5Result struct {
	// PurityByTopic maps topic name → mean 10-NN purity of that topic's
	// site hosts in the trained embedding.
	PurityByTopic map[string]float64
	// MeanPurity averages over topics with enough hosts.
	MeanPurity float64
	// Chance is the expected purity of a random embedding.
	Chance float64
}

// Fig5ClusterPurity reproduces Figure 5's claim numerically: hostnames of
// the same topic cluster in embedding space even when never co-requested.
// Purity is computed in the full embedding (no t-SNE artefacts — the
// paper itself warns about cluster 3 being such an artefact).
func Fig5ClusterPurity(s *Setup) Fig5Result {
	vocab := s.Model.Vocab()
	var vecs [][]float64
	var topics []int
	topicCount := make(map[int]int)
	names := s.Universe.Tax.TopNames()
	for id := 0; id < vocab.Len(); id++ {
		h, ok := s.Universe.HostByName(vocab.Host(id))
		if !ok || h.Kind != synth.KindSite {
			continue
		}
		site := s.Universe.SiteOfHost(h.ID)
		if site == nil {
			continue
		}
		vecs = append(vecs, s.Model.VectorByID(id))
		topics = append(topics, site.Top)
		topicCount[site.Top]++
	}
	res := Fig5Result{PurityByTopic: make(map[string]float64)}
	if len(vecs) == 0 {
		return res
	}

	// Per-topic purity: restrict queries to one topic at a time but
	// search over all site hosts.
	perTopic := make(map[int][]float64)
	k := 10
	for i := range vecs {
		p := pointPurity(vecs, topics, i, k)
		perTopic[topics[i]] = append(perTopic[topics[i]], p)
	}
	var sum float64
	var n int
	var expected float64
	total := len(vecs)
	for topic, ps := range perTopic {
		if topicCount[topic] < 5 {
			continue
		}
		var s2 float64
		for _, p := range ps {
			s2 += p
		}
		mean := s2 / float64(len(ps))
		res.PurityByTopic[names[topic]] = mean
		sum += mean
		n++
		expected += float64(topicCount[topic]-1) / float64(total-1)
	}
	if n > 0 {
		res.MeanPurity = sum / float64(n)
		res.Chance = expected / float64(n)
	}
	return res
}

// pointPurity computes the k-NN same-topic fraction for point i by
// cosine similarity in the embedding.
func pointPurity(vecs [][]float64, topics []int, i, k int) float64 {
	type nd struct {
		j   int
		cos float64
	}
	ds := make([]nd, 0, len(vecs)-1)
	for j := range vecs {
		if j == i {
			continue
		}
		ds = append(ds, nd{j, stats.Cosine(vecs[i], vecs[j])})
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a].cos > ds[b].cos })
	if k > len(ds) {
		k = len(ds)
	}
	same := 0
	for _, d := range ds[:k] {
		if topics[d.j] == topics[i] {
			same++
		}
	}
	return float64(same) / float64(k)
}

// Rows renders the figure-5 result.
func (r Fig5Result) Rows() []Row {
	return []Row{{
		ID:    "FIG5",
		Name:  "Topical clusters in embedding space",
		Paper: "porn / sport-streaming / travel sites form clusters even without co-requests",
		Measured: fmt.Sprintf("mean 10-NN same-topic purity %.2f vs chance %.2f over %d topics",
			r.MeanPurity, r.Chance, len(r.PurityByTopic)),
		Criterion: "mean purity at least 3x chance",
		Pass:      r.MeanPurity > 3*r.Chance && r.MeanPurity > 0,
	}}
}
