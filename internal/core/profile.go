package core

import (
	"errors"
	"math"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// Aggregation selects the function g that folds the embeddings of a
// session's hostnames into a single session representation s (Section 4.1
// leaves g as a design choice; the ablation benches compare them).
type Aggregation int

// Supported aggregation functions.
const (
	// AggMean averages host embeddings (the default).
	AggMean Aggregation = iota
	// AggSum sums host embeddings.
	AggSum
	// AggIDF weights each host embedding by log(total/count), damping
	// ubiquitous hosts such as CDNs and portals.
	AggIDF
)

// ProfilerConfig tunes the session-profiling algorithm.
type ProfilerConfig struct {
	// N is the number of nearest hostnames retrieved around the session
	// representation (paper: N = 1000).
	N int
	// Agg is the aggregation function g. Default AggMean.
	Agg Aggregation
	// DedupFirstVisit drops repeat visits of a hostname within the
	// session, keeping the first, as the paper does to damp interactive
	// services (Section 4.1). Default true (set SkipDedup to disable).
	SkipDedup bool
}

// Profiler turns hostname sessions into category vectors using a trained
// embedding model plus a partial ontology — the complete pipeline of
// paper Section 4.1.
type Profiler struct {
	model *Model
	ont   *ontology.Ontology
	cfg   ProfilerConfig

	// labelledIDs are vocabulary IDs with ontology coverage (H_L ∩ H).
	labelledIDs map[int]ontology.Vector
	idf         []float64
}

// Profiler errors.
var (
	// ErrEmptySession is returned when the session has no usable hosts;
	// the paper's algorithm is only defined for non-empty sessions.
	ErrEmptySession = errors.New("core: empty session")
	// ErrNoLabels is returned when neither the session nor its embedding
	// neighbourhood contains any ontology-labelled host, so Equation (4)
	// is undefined (zero denominator).
	ErrNoLabels = errors.New("core: no labelled hosts reachable from session")
)

// NewProfiler builds a profiler over a trained model and an ontology.
func NewProfiler(m *Model, ont *ontology.Ontology, cfg ProfilerConfig) *Profiler {
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	p := &Profiler{
		model:       m,
		ont:         ont,
		cfg:         cfg,
		labelledIDs: make(map[int]ontology.Vector),
	}
	for id := 0; id < m.Vocab().Len(); id++ {
		if v, ok := ont.Lookup(m.Vocab().Host(id)); ok {
			p.labelledIDs[id] = v
		}
	}
	if cfg.Agg == AggIDF {
		p.idf = make([]float64, m.Vocab().Len())
		total := float64(m.Vocab().Total())
		for id := range p.idf {
			p.idf[id] = logIDF(total, float64(m.Vocab().Count(id)))
		}
	}
	return p
}

// logIDF returns ln(total/count) floored at a small positive value, so
// ubiquitous hosts still contribute to the session vector, just weakly.
func logIDF(total, count float64) float64 {
	if count <= 0 {
		return 0
	}
	if r := total / count; r > 1 {
		return math.Log(r)
	}
	return 0.01
}

// Model returns the underlying embedding model.
func (p *Profiler) Model() *Model { return p.model }

// Ontology returns the ontology used for label transfer.
func (p *Profiler) Ontology() *ontology.Ontology { return p.ont }

// SessionVector computes the aggregated representation s of a session (the
// vector g({h : h ∈ s})). Hosts outside the vocabulary are ignored. The
// second return value is the number of in-vocabulary hosts used.
func (p *Profiler) SessionVector(hosts []string) ([]float64, int) {
	dim := p.model.Dim()
	s := make([]float64, dim)
	n := 0
	for _, h := range hosts {
		id, ok := p.model.Vocab().ID(h)
		if !ok {
			continue
		}
		w := 1.0
		if p.cfg.Agg == AggIDF {
			w = p.idf[id]
		}
		stats.AXPY(w, p.model.VectorByID(id), s)
		n++
	}
	if n == 0 {
		return s, 0
	}
	if p.cfg.Agg == AggMean {
		stats.Scale(1/float64(n), s)
	}
	return s, n
}

// dedupFirst keeps the first occurrence of every host, preserving order.
func dedupFirst(hosts []string) []string {
	seen := make(map[string]bool, len(hosts))
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, h)
	}
	return out
}

// ProfileSession computes the category vector c^{s_u^T} of a session
// (Equations 3 and 4): hostnames labelled by the ontology contribute with
// weight 1; the N nearest vocabulary hosts to the session representation
// contribute with weight [cos(s, h)]_+ when labelled.
func (p *Profiler) ProfileSession(hosts []string) (ontology.Vector, error) {
	if !p.cfg.SkipDedup {
		hosts = dedupFirst(hosts)
	}
	if len(hosts) == 0 {
		return nil, ErrEmptySession
	}

	sVec, inVocab := p.SessionVector(hosts)

	// L: labelled hosts appearing in the session (whether or not they
	// made it into the vocabulary — the observer knows their names).
	type contrib struct {
		alpha float64
		vec   ontology.Vector
	}
	contribs := make(map[string]contrib)
	for _, h := range hosts {
		if v, ok := p.ont.Lookup(h); ok {
			contribs[h] = contrib{alpha: 1, vec: v} // Eq. (3), h ∈ L
		}
	}

	if inVocab > 0 {
		// H_{s}: the N nearest hosts to the session representation.
		for _, nb := range p.model.NearestToVector(sVec, p.cfg.N, nil) {
			v, ok := p.labelledIDs[nb.ID]
			if !ok {
				continue // unlabelled neighbours carry no categories
			}
			if _, inSession := contribs[nb.Host]; inSession {
				continue // session membership dominates (alpha = 1)
			}
			alpha := stats.SumPositive(nb.Cosine) // Eq. (3), otherwise
			if alpha > 0 {
				contribs[nb.Host] = contrib{alpha: alpha, vec: v}
			}
		}
	}

	if len(contribs) == 0 {
		if inVocab == 0 && len(hosts) > 0 {
			// Session contained only unknown hosts.
			return nil, ErrNoLabels
		}
		return nil, ErrNoLabels
	}

	// Eq. (4): weighted average of category vectors.
	out := p.ont.Taxonomy().NewVector()
	var denom float64
	for _, c := range contribs {
		denom += c.alpha
	}
	for _, c := range contribs {
		w := c.alpha / denom
		for i, x := range c.vec {
			out[i] += w * x
		}
	}
	out.Clamp() // guard accumulated rounding just above 1
	return out, nil
}
