package synth

import (
	"sort"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// OntologyConfig controls how the synthetic "Adwords" service labels the
// universe.
type OntologyConfig struct {
	// Coverage is the fraction of all hostnames that receive a label.
	// The paper measured 10.6% for Google Adwords. Default 0.106.
	Coverage float64
	// SupportLabelProb is the probability that a support host gets
	// labelled at all even when selected; real ontologies rarely cover
	// api./cdn. hosts. Default 0.05.
	SupportLabelProb float64
	// Noise jitters labelled weights to model ontology imprecision.
	// Default 0.05.
	Noise float64
	// Seed drives labelling randomness.
	Seed uint64
}

func (c OntologyConfig) withDefaults() OntologyConfig {
	if c.Coverage <= 0 {
		c.Coverage = 0.106
	}
	if c.SupportLabelProb <= 0 {
		c.SupportLabelProb = 0.05
	}
	if c.Noise < 0 {
		c.Noise = 0
	} else if c.Noise == 0 {
		c.Noise = 0.05
	}
	return c
}

// BuildOntology labels a popularity-biased subset of the universe's
// hostnames with their ground-truth categories (plus noise), reproducing
// the partial coverage that motivates the paper's algorithm: popular
// first-party sites are likely covered, infrastructure hosts almost never
// are, and trackers/shared CDNs are never labelled.
func BuildOntology(u *Universe, cfg OntologyConfig) *ontology.Ontology {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed ^ 0x0070109)
	ont := ontology.New(u.Tax)

	budget := int(cfg.Coverage * float64(len(u.Hosts)))
	if budget < 1 {
		budget = 1
	}

	// Candidate site hosts ordered by popularity (most popular first):
	// ontology coverage correlates with site prominence.
	siteOrder := make([]int, len(u.Sites))
	for i := range siteOrder {
		siteOrder[i] = i
	}
	sort.SliceStable(siteOrder, func(a, b int) bool {
		return u.Popularity[siteOrder[a]] > u.Popularity[siteOrder[b]]
	})

	label := func(hostID int) {
		truth := u.GroundTruthCategories(hostID)
		if truth == nil {
			return
		}
		v := truth.Clone()
		if cfg.Noise > 0 {
			for i := range v {
				if v[i] > 0 {
					v[i] += cfg.Noise * (rng.Float64() - 0.5)
				}
			}
		}
		ont.Add(u.Hosts[hostID].Name, v)
	}

	// Coverage is popularity-biased but long-tailed, like real
	// ontologies: roughly 60% of the budget lands on the popularity
	// head, the rest is spread uniformly over the tail, so niche
	// topical sites are represented too.
	headBudget := budget * 6 / 10
	for _, sid := range siteOrder {
		if ont.Len() >= headBudget {
			break
		}
		site := &u.Sites[sid]
		if rng.Float64() < 0.9 {
			label(site.Host)
		}
		for _, hid := range site.Support {
			if ont.Len() >= headBudget {
				break
			}
			if rng.Bool(cfg.SupportLabelProb) {
				label(hid)
			}
		}
	}
	tail := append([]int(nil), siteOrder...)
	rng.ShuffleInts(tail)
	for _, sid := range tail {
		if ont.Len() >= budget {
			break
		}
		site := &u.Sites[sid]
		if !ont.Covered(u.Hosts[site.Host].Name) {
			label(site.Host)
		}
		for _, hid := range site.Support {
			if ont.Len() >= budget {
				break
			}
			if rng.Bool(cfg.SupportLabelProb) {
				label(hid)
			}
		}
	}
	return ont
}

// BuildBlocklist returns the merged tracker blocklist for the universe —
// the synthetic stand-in for the adaway/hpHosts/yoyo lists of Section 5.4.
// Coverage is the fraction of tracker hosts the lists actually know about
// (real lists are incomplete); 1.0 blocks them all.
func BuildBlocklist(u *Universe, coverage float64, seed uint64) *ontology.Blocklist {
	if coverage <= 0 || coverage > 1 {
		coverage = 1
	}
	rng := stats.NewRNG(seed ^ 0xb10c)
	b := ontology.NewBlocklist()
	for _, hid := range u.TrackerIDs {
		if rng.Float64() < coverage {
			b.Add(u.Hosts[hid].Name)
		}
	}
	return b
}
