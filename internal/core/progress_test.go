package core

import (
	"math"
	"testing"

	"hostprof/internal/stats"
)

// Train must invoke Progress once per epoch, in order, with a finite
// positive loss and plausible pair counts.
func TestTrainProgressHook(t *testing.T) {
	rng := stats.NewRNG(91)
	corpus, _, _ := topicCorpus(rng, 8, 150, 12)
	cfg := smallConfig()
	cfg.Epochs = 4
	var got []EpochStats
	cfg.Progress = func(e EpochStats) { got = append(got, e) }

	if _, err := Train(corpus, cfg); err != nil {
		t.Fatal(err)
	}
	if len(got) != cfg.Epochs {
		t.Fatalf("progress called %d times, want %d", len(got), cfg.Epochs)
	}
	for i, e := range got {
		if e.Epoch != i || e.Epochs != cfg.Epochs {
			t.Fatalf("epoch %d reported as %+v", i, e)
		}
		if e.Pairs <= 0 {
			t.Fatalf("epoch %d trained no pairs: %+v", i, e)
		}
		if e.Loss <= 0 || math.IsNaN(e.Loss) || math.IsInf(e.Loss, 0) {
			t.Fatalf("epoch %d loss = %v", i, e.Loss)
		}
		if e.Duration < 0 {
			t.Fatalf("epoch %d duration = %v", i, e.Duration)
		}
	}
	// SGD on the toy corpus must make progress: the last epoch's loss
	// should improve on the first's.
	if got[len(got)-1].Loss >= got[0].Loss {
		t.Fatalf("loss did not decrease: first %v, last %v",
			got[0].Loss, got[len(got)-1].Loss)
	}
}

// The progress hook must not change the learned weights: a run with the
// hook set and one without must produce identical embeddings under a
// single deterministic worker.
func TestTrainProgressHookDoesNotPerturbTraining(t *testing.T) {
	rng := stats.NewRNG(92)
	corpus, ta, _ := topicCorpus(rng, 6, 100, 10)
	base, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Progress = func(EpochStats) {}
	hooked, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	va, _ := base.Vector(ta[0])
	vb, _ := hooked.Vector(ta[0])
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("embeddings diverged at dim %d: %v vs %v", i, va[i], vb[i])
		}
	}
}
