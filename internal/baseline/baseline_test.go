package baseline

import (
	"errors"
	"testing"

	"hostprof/internal/core"
	"hostprof/internal/ontology"
	"hostprof/internal/synth"
)

func fixture(t *testing.T) (*synth.Universe, *ontology.Ontology) {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 120, Seed: 91})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 93})
	return u, ont
}

func TestOntologyOnlyAveragesLabels(t *testing.T) {
	u, ont := fixture(t)
	p := NewOntologyOnly(ont)
	hosts := ont.Hosts()
	prof, err := p.ProfileSession([]string{hosts[0], hosts[1], "unknown.example"})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Valid() {
		t.Fatal("profile out of range")
	}
	v0, _ := ont.Lookup(hosts[0])
	v1, _ := ont.Lookup(hosts[1])
	for i := range prof {
		want := (v0[i] + v1[i]) / 2
		if diff := prof[i] - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("category %d = %v, want %v", i, prof[i], want)
		}
	}
	_ = u
}

func TestOntologyOnlyDedups(t *testing.T) {
	_, ont := fixture(t)
	p := NewOntologyOnly(ont)
	h := ont.Hosts()[0]
	once, err := p.ProfileSession([]string{h})
	if err != nil {
		t.Fatal(err)
	}
	thrice, err := p.ProfileSession([]string{h, h, h})
	if err != nil {
		t.Fatal(err)
	}
	for i := range once {
		if once[i] != thrice[i] {
			t.Fatal("repeat visits changed the profile")
		}
	}
}

func TestOntologyOnlyErrors(t *testing.T) {
	_, ont := fixture(t)
	p := NewOntologyOnly(ont)
	if _, err := p.ProfileSession(nil); !errors.Is(err, core.ErrEmptySession) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.ProfileSession([]string{"nope.example"}); !errors.Is(err, core.ErrNoLabels) {
		t.Fatalf("err = %v", err)
	}
}

func TestOracleUsesGroundTruth(t *testing.T) {
	u, _ := fixture(t)
	p := NewOracle(u)
	site := u.Sites[0]
	// Oracle sees support hosts too.
	prof, err := p.ProfileSession([]string{u.Hosts[site.Support[0]].Name})
	if err != nil {
		t.Fatal(err)
	}
	for i := range prof {
		if prof[i] != site.Categories[i] {
			t.Fatal("oracle did not return ground truth")
		}
	}
}

func TestOracleIgnoresTrackers(t *testing.T) {
	u, _ := fixture(t)
	p := NewOracle(u)
	trackerName := u.Hosts[u.TrackerIDs[0]].Name
	if _, err := p.ProfileSession([]string{trackerName}); !errors.Is(err, core.ErrNoLabels) {
		t.Fatalf("err = %v", err)
	}
	site := u.Sites[3]
	prof, err := p.ProfileSession([]string{trackerName, u.Hosts[site.Host].Name})
	if err != nil {
		t.Fatal(err)
	}
	for i := range prof {
		if prof[i] != site.Categories[i] {
			t.Fatal("tracker contaminated oracle profile")
		}
	}
}

func TestRandomProfilerShape(t *testing.T) {
	u, _ := fixture(t)
	p := NewRandom(u.Tax, 99)
	prof, err := p.ProfileSession([]string{"whatever.example"})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != u.Tax.NumCategories() || !prof.Valid() {
		t.Fatal("bad random profile")
	}
	if _, err := p.ProfileSession(nil); !errors.Is(err, core.ErrEmptySession) {
		t.Fatalf("err = %v", err)
	}
	// Two sessions differ (overwhelmingly likely).
	a, _ := p.ProfileSession([]string{"x"})
	b, _ := p.ProfileSession([]string{"x"})
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("random profiler is constant")
	}
}
