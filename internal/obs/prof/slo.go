package prof

import (
	"math"
	"sort"
	"sync"
	"time"

	"hostprof/internal/obs"
)

// sloObjective is the availability objective every endpoint SLO uses:
// 99% of windowed requests must finish under the endpoint's latency
// target, leaving a 1% error budget for the burn rate to be measured
// against.
const sloObjective = 0.99

// An SLO tracks one endpoint against a latency target over a sliding
// window: the fraction of requests breaching the target, the burn rate
// of the 1% error budget, and the windowed latency quantiles. All
// methods are safe for concurrent use and on a nil receiver (the
// disabled state).
type SLO struct {
	endpoint string
	target   float64 // seconds
	win      *Windowed
}

// Observe records one request latency in seconds. Safe on nil — the
// per-request cost of a disabled SLO is this nil check.
func (s *SLO) Observe(seconds float64) {
	if s == nil {
		return
	}
	s.win.Observe(seconds)
}

// SLOStatus is one endpoint's point-in-time SLO state, as surfaced on
// /debug/statusz and the hostprof_slo_* gauges.
type SLOStatus struct {
	Endpoint      string  `json:"endpoint"`
	TargetSeconds float64 `json:"target_seconds"`
	Objective     float64 `json:"objective"`
	// WindowRequests is the number of requests inside the sliding
	// window; the remaining fields are meaningless (and zero/NaN-free:
	// reported as zero) when it is 0.
	WindowRequests int64 `json:"window_requests"`
	// BreachRatio is the fraction of windowed requests over target.
	BreachRatio float64 `json:"breach_ratio"`
	// BurnRate is BreachRatio divided by the error budget (1 −
	// objective): 1.0 means the budget is being consumed exactly as
	// fast as it accrues; above 1 the SLO is burning down.
	BurnRate float64 `json:"burn_rate"`
	P50      float64 `json:"p50_seconds"`
	P90      float64 `json:"p90_seconds"`
	P99      float64 `json:"p99_seconds"`
}

// Status snapshots the SLO. Safe on nil (returns the zero value).
func (s *SLO) Status() SLOStatus {
	if s == nil {
		return SLOStatus{}
	}
	st := SLOStatus{
		Endpoint:      s.endpoint,
		TargetSeconds: s.target,
		Objective:     sloObjective,
	}
	above, total := s.win.CountAbove(s.target)
	st.WindowRequests = total
	if total == 0 {
		return st
	}
	st.BreachRatio = float64(above) / float64(total)
	st.BurnRate = st.BreachRatio / (1 - sloObjective)
	counts, n := s.win.Snapshot()
	st.P50 = finiteOrZero(EstimateQuantile(s.win.Buckets(), counts, n, 0.50))
	st.P90 = finiteOrZero(EstimateQuantile(s.win.Buckets(), counts, n, 0.90))
	st.P99 = finiteOrZero(EstimateQuantile(s.win.Buckets(), counts, n, 0.99))
	return st
}

func finiteOrZero(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

// An SLOTracker owns the per-endpoint SLOs and exports their state as
// hostprof_slo_* gauges. Safe for concurrent use and on a nil
// receiver.
type SLOTracker struct {
	reg    *obs.Registry
	prefix string
	window time.Duration
	slices int

	mu   sync.Mutex
	slos map[string]*SLO
}

// NewSLOTracker builds a tracker whose SLOs measure over the given
// sliding window (zero selects 5 minutes, sliced at 15s granularity).
// Gauges land in reg when non-nil, under hostprof_slo_* names.
func NewSLOTracker(window time.Duration, reg *obs.Registry) *SLOTracker {
	return NewNamedSLOTracker("hostprof_slo", window, reg)
}

// NewNamedSLOTracker is NewSLOTracker with a caller-chosen metric-name
// prefix ("hostprof_slo" is the default), so two trackers in one
// process — a backend's and a gateway's — export distinguishable
// families (e.g. hostprof_gateway_slo_burn_rate).
func NewNamedSLOTracker(prefix string, window time.Duration, reg *obs.Registry) *SLOTracker {
	if prefix == "" {
		prefix = "hostprof_slo"
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	slices := int(window / (15 * time.Second))
	if slices < 4 {
		slices = 4
	}
	if reg != nil {
		reg.Describe(prefix+"_target_seconds", "per-endpoint SLO latency target")
		reg.Describe(prefix+"_window_requests", "requests inside the SLO sliding window")
		reg.Describe(prefix+"_breach_ratio", "fraction of windowed requests over the SLO target")
		reg.Describe(prefix+"_burn_rate", "error-budget burn rate: breach ratio / (1 - objective); >1 burns the budget down")
		reg.Describe(prefix+"_latency_seconds", "windowed latency quantile estimates per endpoint")
	}
	return &SLOTracker{reg: reg, prefix: prefix, window: window, slices: slices, slos: make(map[string]*SLO)}
}

// Register creates (or returns) the SLO for endpoint with the given
// latency target and wires its gauges. Safe on a nil tracker (returns
// nil, the disabled SLO).
func (t *SLOTracker) Register(endpoint string, target time.Duration) *SLO {
	if t == nil || target <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.slos[endpoint]; ok {
		return s
	}
	// The target becomes a bucket bound, so the breach count is exact
	// rather than bucket-rounded.
	bounds := append([]float64{}, defaultSLOBuckets...)
	bounds = append(bounds, target.Seconds())
	s := &SLO{
		endpoint: endpoint,
		target:   target.Seconds(),
		win:      NewWindowed(t.window, t.slices, bounds),
	}
	t.slos[endpoint] = s
	if reg := t.reg; reg != nil {
		le := obs.L("endpoint", endpoint)
		reg.GaugeFunc(t.prefix+"_target_seconds", func() float64 { return s.target }, le)
		reg.GaugeFunc(t.prefix+"_window_requests", func() float64 { return float64(s.win.Count()) }, le)
		reg.GaugeFunc(t.prefix+"_breach_ratio", func() float64 { return s.Status().BreachRatio }, le)
		reg.GaugeFunc(t.prefix+"_burn_rate", func() float64 { return s.Status().BurnRate }, le)
		for _, q := range []struct {
			name string
			q    float64
		}{{"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}} {
			q := q
			reg.GaugeFunc(t.prefix+"_latency_seconds",
				func() float64 { return finiteOrZero(s.win.Quantile(q.q)) },
				le, obs.L("quantile", q.name))
		}
	}
	return s
}

// Get returns the registered SLO for endpoint, or nil. Safe on nil.
func (t *SLOTracker) Get(endpoint string) *SLO {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slos[endpoint]
}

// Status snapshots every registered SLO, sorted by endpoint. Safe on
// nil (returns nil).
func (t *SLOTracker) Status() []SLOStatus {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	slos := make([]*SLO, 0, len(t.slos))
	for _, s := range t.slos {
		slos = append(slos, s)
	}
	t.mu.Unlock()
	sort.Slice(slos, func(i, j int) bool { return slos[i].endpoint < slos[j].endpoint })
	out := make([]SLOStatus, len(slos))
	for i, s := range slos {
		out[i] = s.Status()
	}
	return out
}

// defaultSLOBuckets are the latency bounds SLO windows use, a denser
// low end than obs.DefBuckets because SLO targets live in the
// milliseconds.
var defaultSLOBuckets = []float64{
	.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}
