package benchfmt

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	out := `goos: linux
goarch: amd64
BenchmarkTrain/workers=4-8   	      10	  11131 ns/op	     42 B/op	       2 allocs/op
BenchmarkReportIngest/disabled-8 	     100	  74670 ns/op
PASS
ok  	hostprof/internal/server	0.128s
`
	results, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("parsed %d results, want 2", len(results))
	}
	r := results[0]
	if r.Name != "Train/workers=4" || r.Procs != 8 || r.Iterations != 10 {
		t.Fatalf("result = %+v", r)
	}
	if r.Metrics["ns/op"] != 11131 || r.Metrics["B/op"] != 42 || r.Metrics["allocs/op"] != 2 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if results[1].Key() != "ReportIngest/disabled-8" {
		t.Fatalf("key = %q", results[1].Key())
	}

	empty, err := Parse(strings.NewReader("PASS\n"))
	if err != nil || empty == nil || len(empty) != 0 {
		t.Fatalf("empty parse = %v, %v", empty, err)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := ParseLine("BenchmarkObserve-2 100 5000 ns/op 12.5 visits/op")
	if !ok {
		t.Fatal("line not recognized")
	}
	if r.Metrics["visits/op"] != 12.5 {
		t.Fatalf("custom metric lost: %+v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \thostprof\t1.2s",
		"BenchmarkBroken notanumber ns/op",
		"",
	} {
		if _, ok := ParseLine(line); ok {
			t.Fatalf("line %q wrongly accepted", line)
		}
	}
}

func mkResult(name string, nsop float64) Result {
	return Result{Name: name, Procs: 8, Iterations: 1,
		Metrics: map[string]float64{"ns/op": nsop}}
}

func TestDiffRegressionGate(t *testing.T) {
	base := []Result{
		mkResult("Fast", 50_000),
		mkResult("Slow", 2_000_000),
		mkResult("Gone", 10_000),
		mkResult("Noise", 200), // below default floor
	}
	head := []Result{
		mkResult("Fast", 55_000),     // +10%: within tolerance
		mkResult("Slow", 10_000_000), // 5x: regression
		mkResult("Noise", 20_000),    // 100x but under floor: skipped
		mkResult("New", 1_000),
	}
	rep := Diff(base, head, DiffConfig{})
	if rep.Regressions != 1 {
		t.Fatalf("regressions = %d, want 1", rep.Regressions)
	}
	byKey := make(map[string]Delta)
	for _, d := range rep.Deltas {
		byKey[d.Key] = d
	}
	if byKey["Fast-8"].Regression {
		t.Fatal("within-tolerance growth flagged as regression")
	}
	if d := byKey["Slow-8"]; !d.Regression || d.Ratio != 5 {
		t.Fatalf("Slow delta = %+v", d)
	}
	if d := byKey["Noise-8"]; !d.Skipped || d.Regression {
		t.Fatalf("sub-floor bench not skipped: %+v", d)
	}
	if len(rep.OnlyBase) != 1 || rep.OnlyBase[0] != "Gone-8" {
		t.Fatalf("OnlyBase = %v", rep.OnlyBase)
	}
	if len(rep.OnlyHead) != 1 || rep.OnlyHead[0] != "New-8" {
		t.Fatalf("OnlyHead = %v", rep.OnlyHead)
	}

	var sb strings.Builder
	rep.Write(&sb)
	table := sb.String()
	for _, want := range []string{"REGRESSION", "below noise floor", "only in base", "only in head", "5.00x"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
}

func TestDiffCustomMetricAndTolerance(t *testing.T) {
	base := []Result{{Name: "A", Procs: 8, Metrics: map[string]float64{"allocs/op": 10_000}}}
	head := []Result{{Name: "A", Procs: 8, Metrics: map[string]float64{"allocs/op": 10_600}}}
	if rep := Diff(base, head, DiffConfig{Metric: "allocs/op", Tolerance: 0.05}); rep.Regressions != 1 {
		t.Fatalf("6%% growth at 5%% tolerance: regressions = %d, want 1", rep.Regressions)
	}
	if rep := Diff(base, head, DiffConfig{Metric: "allocs/op", Tolerance: 0.10}); rep.Regressions != 0 {
		t.Fatalf("6%% growth at 10%% tolerance: regressions = %d, want 0", rep.Regressions)
	}
	// A metric absent on either side is not comparable, never a regression.
	if rep := Diff(base, head, DiffConfig{Metric: "B/op"}); rep.Regressions != 0 || len(rep.Deltas) != 0 {
		t.Fatalf("absent metric compared: %+v", rep)
	}
}

// TestDiffProcsMismatch: base and head captured at different GOMAXPROCS
// key apart and compare nothing — the report must say so instead of
// letting a zero-comparison gate pass silently.
func TestDiffProcsMismatch(t *testing.T) {
	at := func(name string, procs int, nsop float64) Result {
		return Result{Name: name, Procs: procs, Iterations: 1,
			Metrics: map[string]float64{"ns/op": nsop}}
	}
	base := []Result{
		at("Query", 8, 100_000),
		at("Train", 8, 900_000),
		at("Stable", 4, 50_000),
	}
	head := []Result{
		at("Query", 4, 900_000), // 9x slower, but at different procs: not compared
		at("Train", 8, 900_000),
		at("Stable", 4, 50_000),
	}
	rep := Diff(base, head, DiffConfig{})
	if rep.Regressions != 0 {
		t.Fatalf("regressions = %d; cross-procs values must not be compared", rep.Regressions)
	}
	if len(rep.ProcsMismatches) != 1 {
		t.Fatalf("ProcsMismatches = %+v, want exactly Query", rep.ProcsMismatches)
	}
	m := rep.ProcsMismatches[0]
	if m.Name != "Query" || len(m.BaseProcs) != 1 || m.BaseProcs[0] != 8 ||
		len(m.HeadProcs) != 1 || m.HeadProcs[0] != 4 {
		t.Fatalf("mismatch = %+v", m)
	}

	var sb strings.Builder
	rep.Write(&sb)
	if !strings.Contains(sb.String(), "WARNING: Query ran at GOMAXPROCS [8] in base but [4] in head") {
		t.Fatalf("table missing procs warning:\n%s", sb.String())
	}

	// A benchmark gone entirely (not re-run anywhere) is OnlyBase, not a
	// procs mismatch; identical procs never warn.
	rep2 := Diff([]Result{at("Gone", 8, 1)}, []Result{at("Stable", 4, 1)}, DiffConfig{})
	if len(rep2.ProcsMismatches) != 0 {
		t.Fatalf("disjoint names flagged as procs mismatch: %+v", rep2.ProcsMismatches)
	}
}
