package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"hostprof/internal/pcap"
	"hostprof/internal/sniffer"
	"hostprof/internal/trace"
)

// cmdSniff reads a pcap capture and writes the extracted hostname trace.
func cmdSniff(args []string) error {
	fs := flag.NewFlagSet("sniff", flag.ExitOnError)
	in := fs.String("pcap", "", "input pcap file (required)")
	out := fs.String("out", "-", "output trace JSONL ('-' for stdout)")
	stats := fs.Bool("stats", true, "print observer statistics to stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-pcap is required")
	}

	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := pcap.NewReader(f)
	if err != nil {
		return err
	}

	obs := sniffer.NewObserver(sniffer.ObserverConfig{})
	tr := trace.New(nil)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if v, ok := obs.ProcessPacket(rec.Data, int64(rec.TimeSec)); ok {
			tr.Append(v)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	if err := tr.WriteJSONL(w); err != nil {
		return err
	}
	if *stats {
		st := obs.Stats()
		fmt.Fprintf(os.Stderr, "packets=%d tls=%d quic=%d dns=%d undecodable=%d flows=%d\n",
			st.Packets, st.TLSVisits, st.QUICVisits, st.DNSVisits,
			st.Undecodable, st.FlowsTracked)
	}
	return nil
}
