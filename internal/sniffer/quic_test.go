package sniffer

import (
	"bytes"
	"encoding/hex"
	"errors"
	"testing"

	"hostprof/internal/stats"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestRFC9001AppendixAKeys checks the Initial key derivation against the
// published test vectors (RFC 9001 Appendix A.1, DCID 8394c8f03e515708).
func TestRFC9001AppendixAKeys(t *testing.T) {
	dcid := unhex(t, "8394c8f03e515708")
	initial := hkdfExtract(quicV1InitialSalt, dcid)
	wantInitial := unhex(t, "7db5df06e7a69e432496adedb00851923595221596ae2ae9fb8115c1e9ed0a44")
	if !bytes.Equal(initial, wantInitial) {
		t.Fatalf("initial_secret = %x", initial)
	}
	client := hkdfExpandLabel(initial, "client in", nil, 32)
	wantClient := unhex(t, "c00cf151ca5be075ed0ebfb5c80323c42d6b7db67881289af4008f1f6c357aea")
	if !bytes.Equal(client, wantClient) {
		t.Fatalf("client_initial_secret = %x", client)
	}
	keys := deriveClientInitialKeys(dcid)
	if !bytes.Equal(keys.key, unhex(t, "1f369613dd76d5467730efcbe3b1a22d")) {
		t.Fatalf("key = %x", keys.key)
	}
	if !bytes.Equal(keys.iv, unhex(t, "fa044b2f42a3fd3b46fb255c")) {
		t.Fatalf("iv = %x", keys.iv)
	}
	if !bytes.Equal(keys.hp, unhex(t, "9f50449e04a0e810283a1e9933adedd2")) {
		t.Fatalf("hp = %x", keys.hp)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 63, 64, 16383, 16384, 1 << 29, 1 << 30, 1 << 61} {
		buf := appendVarint(nil, v)
		got, n, err := readVarint(buf)
		if err != nil {
			t.Fatalf("v=%d: %v", v, err)
		}
		if got != v || n != len(buf) {
			t.Fatalf("v=%d: got %d (n=%d, len=%d)", v, got, n, len(buf))
		}
	}
}

func TestVarintEncodingSizes(t *testing.T) {
	cases := []struct {
		v    uint64
		size int
	}{
		{0, 1}, {63, 1}, {64, 2}, {16383, 2}, {16384, 4}, {1<<30 - 1, 4}, {1 << 30, 8},
	}
	for _, c := range cases {
		if got := len(appendVarint(nil, c.v)); got != c.size {
			t.Errorf("varint(%d) uses %d bytes, want %d", c.v, got, c.size)
		}
	}
}

func TestVarintTruncated(t *testing.T) {
	if _, _, err := readVarint(nil); !errors.Is(err, ErrTruncated) {
		t.Fatal("empty varint should fail")
	}
	if _, _, err := readVarint([]byte{0x40}); !errors.Is(err, ErrTruncated) {
		t.Fatal("short 2-byte varint should fail")
	}
}

func TestQUICInitialRoundTrip(t *testing.T) {
	rng := stats.NewRNG(11)
	for _, host := range []string{"quic.example", "video.cdn.example", "q.io"} {
		pkt, err := BuildQUICInitial(host, rng)
		if err != nil {
			t.Fatal(err)
		}
		if len(pkt) < quicMinInitialUDP {
			t.Fatalf("Initial only %d bytes, must be >= %d", len(pkt), quicMinInitialUDP)
		}
		got, err := ParseQUICInitialSNI(pkt)
		if err != nil {
			t.Fatalf("%s: %v", host, err)
		}
		if got != host {
			t.Fatalf("got %q, want %q", got, host)
		}
	}
}

func TestQUICInitialDoesNotMutateInput(t *testing.T) {
	rng := stats.NewRNG(12)
	pkt, err := BuildQUICInitial("immutable.example", rng)
	if err != nil {
		t.Fatal(err)
	}
	cp := append([]byte(nil), pkt...)
	if _, err := ParseQUICInitialSNI(pkt); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp, pkt) {
		t.Fatal("parser mutated the captured datagram")
	}
}

func TestQUICInitialCorruptionDetected(t *testing.T) {
	rng := stats.NewRNG(13)
	pkt, err := BuildQUICInitial("corrupt.example", rng)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a ciphertext byte near the end: AEAD must fail.
	bad := append([]byte(nil), pkt...)
	bad[len(bad)-1] ^= 0xff
	if _, err := ParseQUICInitialSNI(bad); !errors.Is(err, ErrQUICDecrypt) {
		t.Fatalf("err = %v, want ErrQUICDecrypt", err)
	}
}

func TestQUICRejectsNonInitial(t *testing.T) {
	// Short header packet.
	if _, err := ParseQUICInitialSNI([]byte{0x40, 1, 2, 3, 4, 5, 6, 7}); !errors.Is(err, ErrNotQUICInitial) {
		t.Fatalf("err = %v", err)
	}
	// Wrong version.
	pkt := []byte{0xc0, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00}
	if _, err := ParseQUICInitialSNI(pkt); !errors.Is(err, ErrNotQUICInitial) {
		t.Fatalf("err = %v", err)
	}
	// Handshake long-header type (10) with v1.
	rng := stats.NewRNG(14)
	good, err := BuildQUICInitial("x.example", rng)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[0] = (bad[0] &^ 0x30) | 0x20
	if _, err := ParseQUICInitialSNI(bad); !errors.Is(err, ErrNotQUICInitial) {
		t.Fatalf("err = %v", err)
	}
}

func TestReassembleCryptoOrdersChunks(t *testing.T) {
	rng := stats.NewRNG(15)
	rec := BuildClientHello("multi.example", rng)
	hello := rec[5:]
	cut := len(hello) / 3
	// Two CRYPTO frames out of order.
	var payload []byte
	payload = append(payload, frameTypeCrypto)
	payload = appendVarint(payload, uint64(cut))
	payload = appendVarint(payload, uint64(len(hello)-cut))
	payload = append(payload, hello[cut:]...)
	payload = append(payload, frameTypeCrypto)
	payload = appendVarint(payload, 0)
	payload = appendVarint(payload, uint64(cut))
	payload = append(payload, hello[:cut]...)
	payload = append(payload, frameTypePadding, frameTypePing)

	crypto, err := reassembleCrypto(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(crypto, hello) {
		t.Fatal("reassembly mismatch")
	}
	host, err := parseClientHelloSNI(crypto)
	if err != nil || host != "multi.example" {
		t.Fatalf("host %q err %v", host, err)
	}
}

func TestReassembleCryptoGap(t *testing.T) {
	var payload []byte
	payload = append(payload, frameTypeCrypto)
	payload = appendVarint(payload, 10) // gap: starts at 10
	payload = appendVarint(payload, 2)
	payload = append(payload, 0xab, 0xcd)
	if _, err := reassembleCrypto(payload); !errors.Is(err, ErrTruncated) {
		t.Fatalf("err = %v", err)
	}
}

func TestReassembleCryptoUnknownFrame(t *testing.T) {
	if _, err := reassembleCrypto([]byte{0x1c, 0, 0}); !errors.Is(err, ErrNotQUICInitial) {
		t.Fatalf("err = %v", err)
	}
}
