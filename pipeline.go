package hostprof

import (
	"fmt"
	"sync"

	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/sniffer"
	"hostprof/internal/trace"
)

// PipelineConfig assembles a complete network-observer pipeline.
type PipelineConfig struct {
	// Observer configures packet decoding and user attribution.
	Observer ObserverConfig
	// Train configures embedding training; zero values select paper
	// defaults.
	Train TrainConfig
	// Profile configures session profiling; zero N selects the paper's
	// 1000.
	Profile ProfilerConfig
	// SessionWindow is the profiling window T in seconds (paper: 20
	// minutes). Zero selects 1200.
	SessionWindow int64
	// Blocklist, when non-nil, filters tracker hostnames before both
	// training and profiling, as Section 5.4 prescribes.
	Blocklist *Blocklist
	// Ontology supplies the labelled subset H_L.
	Ontology *Ontology
	// Metrics, when non-nil, is the registry every pipeline stage
	// exports into (hostprof_* names; see internal/obs). Nil creates a
	// private registry, retrievable via Pipeline.Metrics, so the
	// pipeline is always instrumented.
	Metrics *obs.Registry
}

// Pipeline is the end-to-end eavesdropper: packets in, profiles and ads
// out. It is safe for use from a single goroutine; packet ingestion and
// (re)training may run concurrently only through the exported methods,
// which serialize on an internal lock.
type Pipeline struct {
	cfg PipelineConfig
	reg *obs.Registry
	met pipelineMetrics

	mu       sync.Mutex
	observer *Observer
	visits   *Trace
	model    *Model
	profiler *Profiler
}

// pipelineMetrics caches the pipeline's registry handles.
type pipelineMetrics struct {
	frames         *obs.Counter
	visits         *obs.Counter
	blocked        *obs.Counter
	retrains       *obs.Counter
	retrainErrors  *obs.Counter
	retrainSeconds *obs.Histogram
	epochs         *obs.Counter
	epochSeconds   *obs.Histogram
	epochLoss      *obs.Gauge
	profileSeconds *obs.Histogram
	profileErrors  *obs.Counter
}

// retrainBuckets spans sub-second toy corpora to multi-hour production
// retrains.
var retrainBuckets = obs.ExpBuckets(0.01, 4, 10)

func newPipelineMetrics(reg *obs.Registry) pipelineMetrics {
	reg.Describe("hostprof_ingest_visits_total", "visits recorded into the trace store")
	reg.Describe("hostprof_retrain_seconds", "wall time of full model retrains")
	reg.Describe("hostprof_train_epoch_loss", "mean negative-sampling loss of the last epoch")
	return pipelineMetrics{
		frames:         reg.Counter("hostprof_ingest_frames_total"),
		visits:         reg.Counter("hostprof_ingest_visits_total"),
		blocked:        reg.Counter("hostprof_ingest_blocklist_drops_total"),
		retrains:       reg.Counter("hostprof_retrain_total"),
		retrainErrors:  reg.Counter("hostprof_retrain_errors_total"),
		retrainSeconds: reg.Histogram("hostprof_retrain_seconds", retrainBuckets),
		epochs:         reg.Counter("hostprof_train_epochs_total"),
		epochSeconds:   reg.Histogram("hostprof_train_epoch_seconds", retrainBuckets),
		epochLoss:      reg.Gauge("hostprof_train_epoch_loss"),
		profileSeconds: reg.Histogram("hostprof_profile_seconds", nil),
		profileErrors:  reg.Counter("hostprof_profile_errors_total"),
	}
}

// NewPipeline validates cfg and returns an empty pipeline.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if cfg.Ontology == nil {
		return nil, fmt.Errorf("hostprof: pipeline requires an ontology")
	}
	if cfg.SessionWindow <= 0 {
		cfg.SessionWindow = 20 * 60
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Observer.Metrics == nil {
		cfg.Observer.Metrics = reg
	}
	return &Pipeline{
		cfg:      cfg,
		reg:      reg,
		met:      newPipelineMetrics(reg),
		observer: sniffer.NewObserver(cfg.Observer),
		visits:   trace.New(nil),
	}, nil
}

// Metrics returns the registry the pipeline exports into — the
// configured one, or the private registry created when none was given.
func (p *Pipeline) Metrics() *obs.Registry { return p.reg }

// Ingest feeds one captured Ethernet frame taken at ts (seconds) to the
// observer; any extracted visit is recorded (unless blocklisted).
// It reports whether a hostname was extracted.
func (p *Pipeline) Ingest(frame []byte, ts int64) bool {
	p.met.frames.Inc()
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.observer.ProcessPacket(frame, ts)
	if !ok {
		return false
	}
	if p.cfg.Blocklist != nil && p.cfg.Blocklist.Contains(v.Host) {
		p.met.blocked.Inc()
		return false
	}
	p.visits.Append(v)
	p.met.visits.Inc()
	return true
}

// IngestVisit records an already-extracted visit (e.g. replayed from a
// stored trace), subject to blocklist filtering.
func (p *Pipeline) IngestVisit(v Visit) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cfg.Blocklist != nil && p.cfg.Blocklist.Contains(v.Host) {
		p.met.blocked.Inc()
		return false
	}
	p.visits.Append(v)
	p.met.visits.Inc()
	return true
}

// Trace returns the accumulated visit trace. The returned value is the
// live trace; callers must not mutate it concurrently with Ingest.
func (p *Pipeline) Trace() *Trace {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.visits
}

// trainConfig returns the configured TrainConfig with the pipeline's
// epoch instrumentation chained in front of any caller-supplied
// Progress hook.
func (p *Pipeline) trainConfig() core.TrainConfig {
	tc := p.cfg.Train
	user := tc.Progress
	tc.Progress = func(e core.EpochStats) {
		p.met.epochs.Inc()
		p.met.epochSeconds.Observe(e.Duration.Seconds())
		p.met.epochLoss.Set(e.Loss)
		if user != nil {
			user(e)
		}
	}
	return tc
}

// retrain fits a model on corpus and swaps it in, recording retrain
// duration and outcome.
func (p *Pipeline) retrain(corpus [][]string, label string) error {
	sp := obs.StartSpan(p.met.retrainSeconds)
	model, err := core.Train(corpus, p.trainConfig())
	if err != nil {
		p.met.retrainErrors.Inc()
		return fmt.Errorf("hostprof: %s: %w", label, err)
	}
	sp.End()
	p.met.retrains.Inc()
	profiler := core.NewProfiler(model, p.cfg.Ontology, p.cfg.Profile)

	p.mu.Lock()
	p.model = model
	p.profiler = profiler
	p.mu.Unlock()
	return nil
}

// Retrain fits a fresh embedding on every per-user-day sequence observed
// so far and swaps it in, mirroring the paper's daily retraining
// (Section 5.4).
func (p *Pipeline) Retrain() error {
	p.mu.Lock()
	corpus := p.visits.AllSequences()
	p.mu.Unlock()
	return p.retrain(corpus, "retraining")
}

// RetrainOnDay fits the embedding on a single day's sequences (the
// paper's "previous whole day") instead of the full history.
func (p *Pipeline) RetrainOnDay(day int) error {
	p.mu.Lock()
	corpus := p.visits.DailySequences(day)
	p.mu.Unlock()
	return p.retrain(corpus, fmt.Sprintf("retraining on day %d", day))
}

// ErrNotTrained is returned by profiling before the first Retrain.
var ErrNotTrained = fmt.Errorf("hostprof: pipeline model not trained yet")

// Model returns the current embedding model, or nil before training.
func (p *Pipeline) Model() *Model {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.model
}

// Ready reports whether the pipeline has a trained model, i.e. whether
// profiling can succeed (a readiness probe).
func (p *Pipeline) Ready() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.profiler != nil
}

// profile runs one session through the profiler, timing it and counting
// failures.
func (p *Pipeline) profile(profiler *Profiler, hosts []string) (Vector, error) {
	if profiler == nil {
		return nil, ErrNotTrained
	}
	sp := obs.StartSpan(p.met.profileSeconds)
	v, err := profiler.ProfileSession(hosts)
	if err != nil {
		p.met.profileErrors.Inc()
		return nil, err
	}
	sp.End()
	return v, nil
}

// ProfileUser profiles the hostnames user requested in the window
// (now-T, now].
func (p *Pipeline) ProfileUser(user int, now int64) (Vector, error) {
	p.mu.Lock()
	profiler := p.profiler
	session := p.visits.Session(user, now, p.cfg.SessionWindow)
	p.mu.Unlock()
	return p.profile(profiler, session)
}

// ProfileSession profiles an explicit hostname sequence.
func (p *Pipeline) ProfileSession(hosts []string) (Vector, error) {
	p.mu.Lock()
	profiler := p.profiler
	p.mu.Unlock()
	return p.profile(profiler, hosts)
}

// ObserverStats returns packet-level counters. The snapshot is built
// from the observer's atomic counters, so it is safe even while another
// goroutine is inside Ingest; the same guarantee holds for
// Observer.Stats when a sniffer.Observer is used directly.
func (p *Pipeline) ObserverStats() sniffer.ObserverStats {
	return p.observer.Stats()
}
