package store

import (
	"bytes"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"

	"hostprof/internal/core"
	"hostprof/internal/obs"
	"hostprof/internal/trace"
)

func mustOpen(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func visit(user int, ts int64, host string) trace.Visit {
	return trace.Visit{User: user, Time: ts, Host: host}
}

func appendAll(t *testing.T, s *Store, vs []trace.Visit) {
	t.Helper()
	for _, v := range vs {
		if err := s.Append(v); err != nil {
			t.Fatalf("Append(%+v): %v", v, err)
		}
	}
}

func TestMemoryStoreBasics(t *testing.T) {
	s := mustOpen(t, Config{Shards: 4})
	vs := []trace.Visit{
		visit(1, 10, "a.example"),
		visit(2, 20, "b.example"),
		visit(1, 30, "c.example"),
		visit(3, 86400+5, "d.example"),
	}
	appendAll(t, s, vs)
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if got := s.Users(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("Users = %v", got)
	}
	if got := s.Session(1, 30, 25); !reflect.DeepEqual(got, []string{"a.example", "c.example"}) {
		t.Fatalf("Session = %v", got)
	}
	// The window is (end-window, end]: a visit exactly window seconds old
	// is excluded.
	if got := s.Session(1, 30, 20); !reflect.DeepEqual(got, []string{"c.example"}) {
		t.Fatalf("Session tight window = %v", got)
	}
	tr := s.SnapshotTrace()
	if tr.Len() != 4 || tr.Days() != 2 {
		t.Fatalf("SnapshotTrace: len=%d days=%d", tr.Len(), tr.Days())
	}
	// Day 0 has users 1 and 2, day 1 has user 3: three (user, day)
	// sequences in total.
	if got := len(s.AllSequences()); got != 3 {
		t.Fatalf("AllSequences groups = %d, want 3", got)
	}
}

// TestSnapshotTraceIsACopy pins the Pipeline.Trace live-pointer fix:
// mutating the returned trace must not affect the store.
func TestSnapshotTraceIsACopy(t *testing.T) {
	s := mustOpen(t, Config{})
	appendAll(t, s, []trace.Visit{visit(1, 1, "a.example")})
	tr := s.SnapshotTrace()
	tr.Append(visit(9, 9, "rogue.example"))
	if s.Len() != 1 {
		t.Fatalf("store mutated through SnapshotTrace copy: len=%d", s.Len())
	}
	if got := s.SnapshotTrace().Len(); got != 1 {
		t.Fatalf("second snapshot sees %d visits, want 1", got)
	}
}

func TestShardRoundingAndSpread(t *testing.T) {
	s := mustOpen(t, Config{Shards: 5})
	if len(s.shards) != 8 {
		t.Fatalf("shards = %d, want rounded to 8", len(s.shards))
	}
	for u := 0; u < 1000; u++ {
		s.Append(visit(u, int64(u), "h.example"))
	}
	// A multiplicative hash over sequential users must not collapse into
	// few shards.
	used := 0
	for i := range s.shards {
		if len(s.shards[i].visits) > 0 {
			used++
		}
	}
	if used < len(s.shards) {
		t.Fatalf("only %d/%d shards used for 1000 sequential users", used, len(s.shards))
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	s := mustOpen(t, Config{Dir: t.TempDir(), Fsync: FsyncNever, Shards: 8})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				s.Append(visit(w, int64(i), fmt.Sprintf("w%d.example", w)))
				if i%50 == 0 {
					s.Session(w, int64(i), 100)
					s.Len()
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			if err := s.Snapshot(); err != nil {
				t.Errorf("Snapshot during writes: %v", err)
			}
		}
	}()
	wg.Wait()
	<-done
	if got := s.Len(); got != workers*per {
		t.Fatalf("Len = %d, want %d", got, workers*per)
	}
	// Everything must also be durable: reopen and compare.
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := mustOpen(t, Config{Dir: s.cfg.Dir})
	if got := s2.Len(); got != workers*per {
		t.Fatalf("reopened Len = %d, want %d", got, workers*per)
	}
}

func TestModelRoundTripThroughSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, Config{Dir: dir})
	corpus := [][]string{{"a.example", "b.example", "a.example", "b.example", "c.example"}}
	model, err := core.Train(corpus, core.TrainConfig{Dim: 8, Epochs: 2, MinCount: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.SetModel(model)
	appendAll(t, s, []trace.Visit{visit(1, 1, "a.example")})
	if err := s.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	s.Close()

	s2 := mustOpen(t, Config{Dir: dir})
	m2 := s2.Model()
	if m2 == nil {
		t.Fatal("model not restored from snapshot")
	}
	if !s2.Recovery().ModelRestored {
		t.Fatal("RecoveryStats.ModelRestored = false")
	}
	if m2.Vocab().Len() != model.Vocab().Len() {
		t.Fatalf("restored vocab %d, want %d", m2.Vocab().Len(), model.Vocab().Len())
	}
	if s2.Recovery().SnapshotVisits != 1 {
		t.Fatalf("SnapshotVisits = %d, want 1", s2.Recovery().SnapshotVisits)
	}
}

func TestMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	s := mustOpen(t, Config{Dir: t.TempDir(), Metrics: reg, Fsync: FsyncAlways})
	appendAll(t, s, []trace.Visit{visit(1, 1, "a.example"), visit(2, 2, "b.example")})
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if got := s.met.appends.Value(); got != 2 {
		t.Fatalf("appends_total = %d, want 2", got)
	}
	if s.met.fsyncs.Value() == 0 {
		t.Fatal("fsyncs_total = 0 under FsyncAlways")
	}
	if s.met.snapshots.Value() != 1 {
		t.Fatalf("snapshots_total = %d, want 1", s.met.snapshots.Value())
	}
	if s.met.walBytes.Value() == 0 {
		t.Fatal("wal_bytes_total = 0 after appends")
	}
	var exp strings.Builder
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"hostprof_store_appends_total", "hostprof_store_visits",
		"hostprof_store_users", "hostprof_store_snapshot_seconds",
		"hostprof_store_recovery_records_total",
	} {
		if !strings.Contains(exp.String(), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

func TestFsyncPolicyParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParseFsync(c.in)
		if (err == nil) != c.ok || (c.ok && got != c.want) {
			t.Errorf("ParseFsync(%q) = %v, %v", c.in, got, err)
		}
		if c.ok && got.String() == "" {
			t.Errorf("FsyncPolicy(%v).String() empty", got)
		}
	}
}

func TestSessionOrdersAcrossInterleavedAppends(t *testing.T) {
	s := mustOpen(t, Config{Shards: 1})
	// Appends arrive out of time order (e.g. reordered capture threads);
	// Session must still return visit-time order.
	appendAll(t, s, []trace.Visit{
		visit(7, 30, "late.example"),
		visit(7, 10, "early.example"),
		visit(7, 20, "mid.example"),
	})
	want := []string{"early.example", "mid.example", "late.example"}
	if got := s.Session(7, 40, 100); !reflect.DeepEqual(got, want) {
		t.Fatalf("Session = %v, want %v", got, want)
	}
}

func TestUsersSorted(t *testing.T) {
	s := mustOpen(t, Config{})
	for _, u := range []int{42, 7, 99, 7} {
		s.Append(visit(u, 1, "h.example"))
	}
	got := s.Users()
	if !sort.IntsAreSorted(got) || len(got) != 3 {
		t.Fatalf("Users = %v", got)
	}
}

func TestModelArtifactVersioning(t *testing.T) {
	s := mustOpen(t, Config{})
	if _, ok, err := s.ModelArtifact(); ok || err != nil {
		t.Fatalf("artifact on untrained store: ok=%v err=%v", ok, err)
	}
	if v := s.ModelVersion(); v != "" {
		t.Fatalf("version on untrained store: %q", v)
	}
	corpus := [][]string{{"a.example", "b.example", "a.example", "b.example", "c.example"}}
	model, err := core.Train(corpus, core.TrainConfig{Dim: 8, Epochs: 2, MinCount: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s.SetModel(model)
	art, ok, err := s.ModelArtifact()
	if !ok || err != nil {
		t.Fatalf("artifact: ok=%v err=%v", ok, err)
	}
	if art.Version == "" || len(art.Data) == 0 {
		t.Fatalf("empty artifact: %+v", art)
	}
	if art.Version != ArtifactVersion(art.Data) {
		t.Fatal("artifact version does not match its data hash")
	}
	// The artifact is a loadable model, and a peer installing it reports
	// the same version — the cluster convergence invariant.
	m2, err := core.Load(bytes.NewReader(art.Data))
	if err != nil {
		t.Fatalf("artifact does not load: %v", err)
	}
	peer := mustOpen(t, Config{})
	peer.InstallModel(m2, art.Data)
	if got := peer.ModelVersion(); got != art.Version {
		t.Fatalf("peer version %q, want %q", got, art.Version)
	}
	// Repeated exports serve the cache: same backing array.
	art2, _, _ := s.ModelArtifact()
	if &art2.Data[0] != &art.Data[0] {
		t.Fatal("artifact cache missed on unchanged model")
	}
	// A new model invalidates the cache and changes the version.
	model3, err := core.Train(corpus, core.TrainConfig{Dim: 8, Epochs: 2, MinCount: 1, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	s.SetModel(model3)
	if got := s.ModelVersion(); got == art.Version || got == "" {
		t.Fatalf("version after retrain %q, want fresh non-empty != %q", got, art.Version)
	}
}
