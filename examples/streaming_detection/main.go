// streaming_detection demonstrates the use case the paper speculates
// about in Section 6.2: illegal sport-streaming services evade takedowns
// by hopping to fresh hostnames, but because their audiences co-request
// them in the same sessions, the *embedding* keeps placing every
// incarnation in the same cluster. Starting from one known streaming
// hostname, nearest-neighbour search in embedding space surfaces the
// others — including hostnames an ontology has never heard of.
package main

import (
	"fmt"
	"log"

	"hostprof"
	"hostprof/internal/synth"
)

func main() {
	universe := synth.NewUniverse(synth.UniverseConfig{Sites: 200, Seed: 17})
	population := synth.NewPopulation(universe, synth.PopulationConfig{
		Users: 40, Days: 5, Seed: 19,
	})
	browsing := population.Browse()

	model, err := hostprof.Train(browsing.AllSequences(), hostprof.TrainConfig{
		Dim: 32, Epochs: 10, MinCount: 2, Workers: 1, Seed: 23, Subsample: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pick the most-visited Sports site as the "known streaming
	// service" seed.
	tax := universe.Tax
	sportsTopic := -1
	for ti, name := range tax.TopNames() {
		if name == "Sports" {
			sportsTopic = ti
		}
	}
	seed := ""
	bestPop := -1.0
	for _, site := range universe.Sites {
		if site.Top != sportsTopic {
			continue
		}
		name := universe.Hosts[site.Host].Name
		if _, ok := model.Vector(name); !ok {
			continue
		}
		if universe.Popularity[site.ID] > bestPop {
			bestPop = universe.Popularity[site.ID]
			seed = name
		}
	}
	if seed == "" {
		log.Fatal("no sports site in vocabulary")
	}

	fmt.Printf("seed streaming hostname: %s\n", seed)
	fmt.Println("nearest hostnames in embedding space:")
	neighbours, err := model.MostSimilar(seed, 12)
	if err != nil {
		log.Fatal(err)
	}
	hits, misses := 0, 0
	for _, nb := range neighbours {
		kind, topic := classify(universe, nb.Host)
		mark := " "
		if topic == sportsTopic {
			mark = "*"
			hits++
		} else {
			misses++
		}
		fmt.Printf("  %s cos=%.3f  %-32s (%s, %s)\n", mark, nb.Cosine, nb.Host, kind, topicName(tax, topic))
	}
	fmt.Printf("=> %d of %d nearest neighbours are sports properties —\n", hits, hits+misses)
	fmt.Println("   candidate mirrors/successors of the seed service, found with no")
	fmt.Println("   ontology coverage and no payload inspection")
}

// classify returns the host kind name and its ground-truth topic (-1 for
// infrastructure).
func classify(u *synth.Universe, host string) (string, int) {
	h, ok := u.HostByName(host)
	if !ok {
		return "unknown", -1
	}
	if site := u.SiteOfHost(h.ID); site != nil {
		return h.Kind.String(), site.Top
	}
	return h.Kind.String(), -1
}

func topicName(tax *hostprof.Taxonomy, ti int) string {
	if ti < 0 {
		return "no topic"
	}
	return tax.TopName(ti)
}
