package stats

import "math"

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	_ = b[len(a)-1] // bounds hint
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm returns the L2 norm of a.
func Norm(a []float64) float64 {
	var s float64
	for _, x := range a {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b, or 0 when either vector
// has zero norm.
func Cosine(a, b []float64) float64 {
	na := Norm(a)
	nb := Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Euclidean returns the L2 distance between a and b.
func Euclidean(a, b []float64) float64 {
	_ = b[len(a)-1]
	var s float64
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// AXPY computes y += alpha*x in place. x and y must have equal length.
func AXPY(alpha float64, x, y []float64) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Normalize scales x to unit L2 norm in place and returns the original
// norm. A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm(x)
	if n == 0 {
		return 0
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return n
}

// Sigmoid returns 1/(1+exp(-x)) computed in a numerically stable way.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// ArgMax returns the index of the largest element of xs, or -1 for an
// empty slice. Ties resolve to the lowest index.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// SumPositive returns max(x, 0), the [x]+ operator from Equation (3) of
// the paper.
func SumPositive(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}
