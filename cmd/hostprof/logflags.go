package main

import (
	"flag"
	"log/slog"
	"os"

	"hostprof/internal/obs/tracer"
)

// logFlags holds the shared -log-format / -log-level flags, so every
// subcommand that logs does so through one leveled, trace-aware
// structured logger (`-log-format json` yields machine-parseable
// output end to end).
type logFlags struct {
	format *string
	level  *string
}

func addLogFlags(fs *flag.FlagSet) logFlags {
	return logFlags{
		format: fs.String("log-format", "text", "log output format: text or json"),
		level:  fs.String("log-level", "info", "log verbosity: debug, info, warn or error"),
	}
}

// setup installs the process-default slog logger per the parsed flags.
func (l logFlags) setup() error {
	lg, err := tracer.NewLogger(os.Stderr, *l.format, *l.level)
	if err != nil {
		return err
	}
	slog.SetDefault(lg)
	return nil
}
