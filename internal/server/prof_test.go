package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"hostprof/internal/obs"
	"hostprof/internal/obs/prof"
	"hostprof/internal/obs/tracer"
)

// TestSlowRequestProfileLinkage is the profiling-pillar acceptance
// test: a request breaching SlowRequest must yield goroutine+mutex
// captures tagged with its trace ID, the trace's handler span must
// carry the /debug/prof/ link, and the captures must be downloadable
// over the backend handler — so /debug/traces leads to the profile
// that explains the slow request.
func TestSlowRequestProfileLinkage(t *testing.T) {
	reg := obs.NewRegistry()
	tr := tracer.New(tracer.Config{Service: "hostprof-serve", SampleRate: 1, BufferTraces: 32, Metrics: reg, Seed: 21})
	profiler := prof.New(prof.Config{
		Interval:        -1, // trigger captures only
		TriggerCooldown: -1, // every slow request captures
		MutexFraction:   -1,
		BlockRate:       -1,
		Metrics:         reg,
	})
	defer profiler.Stop()
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.Tracer = tr
		cfg.Profiler = profiler
		cfg.SlowRequest = time.Nanosecond // everything is slow
	})
	seedVisits(t, fx)

	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if err := ext.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	if _, err := ext.Report(40_000_000, []string{"news-0.example.com"}); err != nil {
		t.Fatalf("report: %v", err)
	}

	// Find a slow-tagged trace with its profiles attr.
	var traceID, profURL string
	for _, tj := range tr.Traces() {
		for _, sd := range tj.Spans {
			for _, a := range sd.Attrs {
				if a.Key == "profiles" && a.Value != "-" {
					traceID, profURL = sd.TraceID, a.Value
				}
			}
		}
	}
	if traceID == "" {
		t.Fatal("no span carries a profiles attr")
	}
	if want := "/debug/prof/?trace=" + traceID; profURL != want {
		t.Fatalf("profiles attr = %q, want %q", profURL, want)
	}

	// The trigger captured goroutine+mutex under that trace ID.
	caps := profiler.Ring().ByTrace(traceID)
	if len(caps) != 2 {
		t.Fatalf("captures for trace = %d, want 2", len(caps))
	}

	// And they are listed and downloadable through the backend handler.
	resp, err := http.Get(fx.srv.URL + profURL + "&format=json")
	if err != nil {
		t.Fatal(err)
	}
	var idx struct {
		Captures []prof.Capture `json:"captures"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(idx.Captures) != 2 {
		t.Fatalf("handler lists %d captures, want 2", len(idx.Captures))
	}
	resp, err = http.Get(fx.srv.URL + fmt.Sprintf("/debug/prof/%d", idx.Captures[0].ID))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatalf("capture download: code=%d len=%d", resp.StatusCode, len(body))
	}

	// The slow log remembers the request with its capture IDs.
	var found bool
	for _, e := range fx.b.slowlog.Snapshot() {
		if e.TraceID == traceID && len(e.CaptureIDs) == 2 {
			found = true
		}
	}
	if !found {
		t.Fatal("slow log does not link the trace to its captures")
	}
}

// TestStatuszEndpoint exercises the aggregated operational view over
// HTTP: build info, SLO state, store status, retrain state, the slow
// log and the profile ring must all render in one page.
func TestStatuszEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.SLOTargets = map[string]time.Duration{"report": 250 * time.Millisecond}
		cfg.SlowRequest = -1
	})
	seedVisits(t, fx)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if err := ext.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	if _, err := ext.Report(40_000_000, []string{"news-0.example.com"}); err != nil {
		t.Fatalf("report: %v", err)
	}

	resp, err := http.Get(fx.srv.URL + "/debug/statusz?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var page map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
		t.Fatal(err)
	}
	for _, section := range []string{"build", "slo", "store", "retrain", "slow_requests", "profile_ring"} {
		if _, ok := page[section]; !ok {
			t.Fatalf("statusz missing section %q (has %v)", section, keys(page))
		}
	}
	var slos []prof.SLOStatus
	if err := json.Unmarshal(page["slo"], &slos); err != nil {
		t.Fatal(err)
	}
	if len(slos) != 1 || slos[0].Endpoint != "report" || slos[0].WindowRequests == 0 {
		t.Fatalf("slo section = %+v", slos)
	}
	var retrain map[string]any
	if err := json.Unmarshal(page["retrain"], &retrain); err != nil {
		t.Fatal(err)
	}
	if retrain["trained"] != true {
		t.Fatalf("retrain section = %v", retrain)
	}

	// HTML rendering too.
	resp, err = http.Get(fx.srv.URL + "/debug/statusz")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(html), "<h2>slo</h2>") || !strings.Contains(string(html), "burn_rate") {
		t.Fatal("HTML statusz missing SLO state")
	}
}

func keys(m map[string]json.RawMessage) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestSLOMetricsOnScrape pins the hostprof_slo_* exposition: a target
// every request breaches must burn at the 100x ceiling, a generous one
// must not burn at all.
func TestSLOMetricsOnScrape(t *testing.T) {
	reg := obs.NewRegistry()
	fx := newResilienceFixture(t, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.SLOTargets = map[string]time.Duration{
			"report":  time.Nanosecond, // unmeetable
			"retrain": time.Hour,       // unmissable
		}
		cfg.SlowRequest = -1
	})
	seedVisits(t, fx)
	ext := &Extension{BaseURL: fx.srv.URL, User: 0}
	if err := ext.Retrain(); err != nil {
		t.Fatalf("retrain: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ext.Report(int64(40_000_000+i), []string{"news-0.example.com"}); err != nil {
			t.Fatalf("report: %v", err)
		}
	}

	resp, err := http.Get(fx.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if !strings.Contains(out, `hostprof_slo_burn_rate{endpoint="report"} 100`) {
		t.Fatalf("report burn rate not at ceiling:\n%s", grepLines(out, "hostprof_slo"))
	}
	if !strings.Contains(out, `hostprof_slo_burn_rate{endpoint="retrain"} 0`) {
		t.Fatalf("retrain burn rate not zero:\n%s", grepLines(out, "hostprof_slo"))
	}
	if !strings.Contains(out, `hostprof_slo_latency_seconds{endpoint="report",quantile="0.99"}`) {
		t.Fatal("latency quantile gauges missing")
	}
}

func grepLines(s, substr string) string {
	var sb strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			sb.WriteString(line)
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// BenchmarkReportIngestProfiled extends the tracing cost contract to
// the profiling pillar: the "slo" variant measures the per-request
// cost of an enabled SLO window (one Observe), the "disabled" variant
// pins that a nil SLO plus a nil profiler add nothing over the
// BenchmarkReportIngest baseline.
func BenchmarkReportIngestProfiled(b *testing.B) {
	b.Run("slo", func(b *testing.B) {
		bk, hosts := newBenchBackend(b, nil)
		slo := prof.NewSLOTracker(time.Minute, nil).Register("report", 250*time.Millisecond)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := bk.report(ctx, 0, int64(30_000_000+i), hosts); err != nil {
				b.Fatal(err)
			}
			slo.Observe(time.Since(start).Seconds())
		}
	})
	b.Run("disabled", func(b *testing.B) {
		bk, hosts := newBenchBackend(b, nil)
		var slo *prof.SLO
		var profiler *prof.Profiler
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			start := time.Now()
			if _, err := bk.report(ctx, 0, int64(30_000_000+i), hosts); err != nil {
				b.Fatal(err)
			}
			slo.Observe(time.Since(start).Seconds())
			_ = profiler.Enabled()
		}
	})
}
