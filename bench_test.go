// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus component throughput ("the algorithm is fully
// parallelizable ... allowing traffic analysis at line rate", Section
// 4.1) and the ablations called out in DESIGN.md.
//
// Quality-bearing benchmarks report their headline quantity as a custom
// metric (purity, affinity, CTR ratio) next to the timing, so a single
// `go test -bench=.` run reproduces both the numbers and the costs.
package hostprof_test

import (
	"context"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"hostprof"
	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/experiment"
	"hostprof/internal/index"
	"hostprof/internal/sniffer"
	"hostprof/internal/stats"
	"hostprof/internal/store"
	"hostprof/internal/synth"
	"hostprof/internal/trace"
	"hostprof/internal/tsne"
)

// benchWorld lazily builds the shared experiment setup; its cost is kept
// out of every benchmark's timer.
var (
	benchOnce  sync.Once
	benchSetup *experiment.Setup
	benchErr   error
)

func setupBench(b *testing.B) *experiment.Setup {
	b.Helper()
	benchOnce.Do(func() {
		benchSetup, benchErr = experiment.NewSetup(experiment.SmallConfig(77))
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSetup
}

// --- One benchmark per table/figure -----------------------------------

func BenchmarkFig2UserDiversityHostnames(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var r experiment.DiversityResult
	for i := 0; i < b.N; i++ {
		r = experiment.Fig2UserDiversityHostnames(s)
	}
	b.ReportMetric(float64(r.CoreSizes[0]), "core80-size")
}

func BenchmarkFig3UserDiversityCategories(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var r experiment.DiversityResult
	for i := 0; i < b.N; i++ {
		r = experiment.Fig3UserDiversityCategories(s)
	}
	b.ReportMetric(float64(r.CommonToAll), "common-cats")
}

func BenchmarkFig4TSNEEmbeddings(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var r experiment.Fig4Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.Fig4TSNE(s, 0, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Purity2D, "purity2d")
}

func BenchmarkFig5ClusterPurity(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var r experiment.Fig5Result
	for i := 0; i < b.N; i++ {
		r = experiment.Fig5ClusterPurity(s)
	}
	b.ReportMetric(r.MeanPurity, "purity")
	b.ReportMetric(r.Chance, "chance")
}

// benchCampaign runs the ad-replacement campaign once per iteration and
// returns the last result.
func benchCampaign(b *testing.B, s *experiment.Setup) experiment.CampaignResult {
	b.Helper()
	var r experiment.CampaignResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunCampaign(s, s.Profiler, experiment.CampaignConfig{Seed: uint64(i) + 7})
		if err != nil {
			b.Fatal(err)
		}
	}
	return r
}

func BenchmarkFig6aWebsiteTopics(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	r := benchCampaign(b, s)
	_, share := dominantShare(r.WebsiteTopics)
	b.ReportMetric(share, "top-share")
}

func BenchmarkFig6bAdNetworkAdTopics(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	r := benchCampaign(b, s)
	_, share := dominantShare(r.AdNetTopics)
	b.ReportMetric(share, "top-share")
}

func BenchmarkFig6cEavesdropperAdTopics(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	r := benchCampaign(b, s)
	_, share := dominantShare(r.EavesTopics)
	b.ReportMetric(share, "top-share")
}

func BenchmarkTableCTR(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	r := benchCampaign(b, s)
	b.ReportMetric(r.EavesCTR.Percent(), "eaves-ctr-pct")
	b.ReportMetric(r.AdNetCTR.Percent(), "adnet-ctr-pct")
	b.ReportMetric(r.TTest.P, "ttest-p")
}

func BenchmarkTableCoverage(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var c experiment.CoverageStats
	for i := 0; i < b.N; i++ {
		c = experiment.TableCoverage(s)
	}
	b.ReportMetric(100*c.Coverage, "coverage-pct")
	b.ReportMetric(100*c.Contentless, "contentless-pct")
}

func BenchmarkTableTrackerFilter(b *testing.B) {
	s := setupBench(b)
	b.ResetTimer()
	var t experiment.TrackerStats
	for i := 0; i < b.N; i++ {
		t = experiment.TableTrackerFilter(s)
	}
	b.ReportMetric(100*t.Share, "tracker-share-pct")
}

// --- Scale / line-rate claims (Section 4.1) ----------------------------

func BenchmarkTrainThroughput(b *testing.B) {
	s := setupBench(b)
	corpus := s.Filtered.AllSequences()
	var tokens int64
	for _, seq := range corpus {
		tokens += int64(len(seq))
	}
	cfg := core.TrainConfig{Dim: 32, Epochs: 1, MinCount: 2, Workers: 1, Seed: 5, Subsample: -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Train(corpus, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tokens)*float64(b.N)/b.Elapsed().Seconds(), "tokens/s")
}

func BenchmarkSNIParse(b *testing.B) {
	rng := stats.NewRNG(1)
	rec := sniffer.BuildClientHello("throughput.test.example", rng)
	b.SetBytes(int64(len(rec)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sniffer.ParseSNI(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQUICInitialParse(b *testing.B) {
	rng := stats.NewRNG(2)
	pkt, err := sniffer.BuildQUICInitial("quic.test.example", rng)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pkt)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sniffer.ParseQUICInitialSNI(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDNSParse(b *testing.B) {
	q, err := sniffer.BuildDNSQuery("dns.test.example", 9)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sniffer.ParseDNSQueryName(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkObserverPacketRate(b *testing.B) {
	// Pre-render a realistic packet mix once, then measure pure
	// observation throughput.
	visits := make([]trace.Visit, 200)
	for i := range visits {
		visits[i] = trace.Visit{User: i % 8, Time: int64(i), Host: "rate.test.example"}
	}
	syn := sniffer.NewSynthesizer(sniffer.WireConfig{Channel: sniffer.ChannelMixed, Seed: 3})
	cap, err := syn.SynthesizeTrace(trace.New(visits))
	if err != nil {
		b.Fatal(err)
	}
	var bytes int64
	for _, p := range cap.Packets {
		bytes += int64(len(p))
	}
	b.SetBytes(bytes / int64(len(cap.Packets)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obs := sniffer.NewObserver(sniffer.ObserverConfig{})
		for j, frame := range cap.Packets {
			obs.ProcessPacket(frame, cap.Times[j])
		}
	}
	b.ReportMetric(float64(len(cap.Packets))*float64(b.N)/b.Elapsed().Seconds(), "pkts/s")
}

func BenchmarkProfileSession(b *testing.B) {
	s := setupBench(b)
	per := s.Filtered.PerUserVisits()
	uid := s.Filtered.Users()[0]
	visits := per[uid]
	session := s.Filtered.Session(uid, visits[len(visits)/2].Time, 1200)
	if len(session) == 0 {
		b.Fatal("empty bench session")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Profiler.ProfileSession(session); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdSelection(b *testing.B) {
	s := setupBench(b)
	profile := s.Universe.Tax.NewVector()
	profile[3], profile[40], profile[100] = 0.4, 0.3, 0.2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := s.Selector.Select(profile, 20); len(got) == 0 {
			b.Fatal("no ads")
		}
	}
}

func BenchmarkTSNE(b *testing.B) {
	rng := stats.NewRNG(4)
	points := make([][]float64, 120)
	for i := range points {
		points[i] = make([]float64, 16)
		for d := range points[i] {
			points[i][d] = rng.NormFloat64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tsne.Embed(points, tsne.Config{Iterations: 30, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelNearestNeighbours(b *testing.B) {
	s := setupBench(b)
	q := s.Model.VectorByID(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Model.NearestToVector(q, 40, nil)
	}
}

// --- Ablations (DESIGN.md "Design notes") -------------------------------

// ablationCampaign runs the campaign with a profiler variant and reports
// the mean eavesdropper ad affinity (the deterministic quality signal).
func ablationCampaign(b *testing.B, s *experiment.Setup, prof *core.Profiler, cfg experiment.CampaignConfig) {
	b.Helper()
	var r experiment.CampaignResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunCampaign(s, prof, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MeanEavesAffinity, "eaves-affinity")
	b.ReportMetric(float64(r.ProfileFailures), "profile-failures")
}

func BenchmarkAblationAggregation(b *testing.B) {
	s := setupBench(b)
	for _, c := range []struct {
		name string
		agg  core.Aggregation
	}{{"mean", core.AggMean}, {"sum", core.AggSum}, {"idf", core.AggIDF}} {
		b.Run(c.name, func(b *testing.B) {
			p := core.NewProfiler(s.Model, s.Ontology, core.ProfilerConfig{N: 40, Agg: c.agg})
			ablationCampaign(b, s, p, experiment.CampaignConfig{Seed: 11})
		})
	}
}

func BenchmarkAblationNeighbours(b *testing.B) {
	s := setupBench(b)
	for _, n := range []int{10, 40, 160} {
		b.Run(map[int]string{10: "N10", 40: "N40", 160: "N160"}[n], func(b *testing.B) {
			p := core.NewProfiler(s.Model, s.Ontology, core.ProfilerConfig{N: n, Agg: core.AggIDF})
			ablationCampaign(b, s, p, experiment.CampaignConfig{Seed: 11})
		})
	}
}

func BenchmarkAblationWindow(b *testing.B) {
	s := setupBench(b)
	for _, c := range []struct {
		name string
		secs int64
	}{{"T5min", 300}, {"T20min", 1200}, {"T60min", 3600}} {
		b.Run(c.name, func(b *testing.B) {
			cfg := s.Config
			cfg.SessionWindow = c.secs
			s2 := *s
			s2.Config = cfg
			ablationCampaign(b, &s2, s.Profiler, experiment.CampaignConfig{Seed: 11})
		})
	}
}

func BenchmarkAblationNoDedup(b *testing.B) {
	s := setupBench(b)
	for _, c := range []struct {
		name string
		skip bool
	}{{"dedup", false}, {"nodedup", true}} {
		b.Run(c.name, func(b *testing.B) {
			p := core.NewProfiler(s.Model, s.Ontology, core.ProfilerConfig{N: 40, Agg: core.AggIDF, SkipDedup: c.skip})
			ablationCampaign(b, s, p, experiment.CampaignConfig{Seed: 11})
		})
	}
}

func BenchmarkAblationNoTrackerFilter(b *testing.B) {
	// Train a model on the unfiltered trace (trackers kept) and compare
	// eavesdropper ad quality.
	s := setupBench(b)
	cfg := s.Config.Train
	model, err := core.Train(s.Raw.AllSequences(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewProfiler(model, s.Ontology, core.ProfilerConfig{N: 40, Agg: core.AggIDF})
	b.ResetTimer()
	ablationCampaign(b, s, p, experiment.CampaignConfig{Seed: 11})
}

// --- helpers ------------------------------------------------------------

func dominantShare(m [][]float64) (int, float64) {
	if len(m) == 0 {
		return -1, 0
	}
	means := make([]float64, len(m[0]))
	for _, row := range m {
		for i, v := range row {
			means[i] += v / float64(len(m))
		}
	}
	best := 0
	for i, v := range means {
		if v > means[best] {
			best = i
		}
	}
	return best, means[best]
}

// Keep the facade exercised from the bench package too.
var _ = hostprof.NewTaxonomy

func BenchmarkTrainParallelScaling(b *testing.B) {
	s := setupBench(b)
	corpus := s.Filtered.AllSequences()
	for _, w := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "workers1", 2: "workers2", 4: "workers4"}[w], func(b *testing.B) {
			cfg := core.TrainConfig{Dim: 32, Epochs: 1, MinCount: 2, Workers: w, Seed: 5, Subsample: -1}
			for i := 0; i < b.N; i++ {
				if _, err := core.Train(corpus, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAdNetworkServe(b *testing.B) {
	s := setupBench(b)
	net := ads.NewAdNetwork(s.AdDB, 9)
	user := s.Population.Users[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Serve(user, i%34, i%14)
	}
}

func BenchmarkSynthesizeWire(b *testing.B) {
	visits := make([]trace.Visit, 50)
	for i := range visits {
		visits[i] = trace.Visit{User: i % 4, Time: int64(i), Host: "wire.test.example"}
	}
	tr := trace.New(visits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syn := sniffer.NewSynthesizer(sniffer.WireConfig{Channel: sniffer.ChannelTLS, Seed: uint64(i)})
		if _, err := syn.SynthesizeTrace(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUniverseGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		u := synth.NewUniverse(synth.UniverseConfig{Sites: 150, Seed: uint64(i)})
		if len(u.Hosts) == 0 {
			b.Fatal("empty universe")
		}
	}
}

// --- Durable store (internal/store) -------------------------------------

// BenchmarkPipelineParallelIngest measures concurrent visit ingestion
// through the public pipeline: with the sharded store, callers contend
// only on their visit's shard, so throughput should scale with
// GOMAXPROCS instead of serializing on one mutex.
func BenchmarkPipelineParallelIngest(b *testing.B) {
	s := setupBench(b)
	p, err := hostprof.NewPipeline(hostprof.PipelineConfig{Ontology: s.Ontology})
	if err != nil {
		b.Fatal(err)
	}
	var next int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Distinct users per goroutine spread appends across shards the
		// way distinct subscriber lines would.
		user := int(atomic.AddInt64(&next, 1))
		t := int64(0)
		for pb.Next() {
			t++
			p.IngestVisit(trace.Visit{User: user, Time: t, Host: "ingest.bench.example"})
		}
	})
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "visits/s")
}

// BenchmarkStoreAppendParallel isolates shard scaling: the same parallel
// append load against 1, 8 and 32 shards. One shard reproduces the old
// single-mutex hot path.
func BenchmarkStoreAppendParallel(b *testing.B) {
	for _, shards := range []int{1, 8, 32} {
		b.Run(map[int]string{1: "shards1", 8: "shards8", 32: "shards32"}[shards], func(b *testing.B) {
			st, err := store.Open(store.Config{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			var next int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				user := int(atomic.AddInt64(&next, 1))
				t := int64(0)
				for pb.Next() {
					t++
					if err := st.Append(trace.Visit{User: user, Time: t, Host: "shard.bench.example"}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkStoreWALAppend measures the durable append path (WAL write,
// interval fsync) — the per-visit cost a network observer pays for crash
// safety.
func BenchmarkStoreWALAppend(b *testing.B) {
	st, err := store.Open(store.Config{Dir: b.TempDir(), Fsync: store.FsyncInterval})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(trace.Visit{User: i & 63, Time: int64(i), Host: "wal.bench.example"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/s")
}

// BenchmarkStoreRecovery measures startup WAL replay: the dir is
// populated once and every iteration re-opens it cold (Close never
// snapshots, so each Open replays the full log).
func BenchmarkStoreRecovery(b *testing.B) {
	const visits = 20000
	dir := b.TempDir()
	st, err := store.Open(store.Config{Dir: dir, Fsync: store.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < visits; i++ {
		if err := st.Append(trace.Visit{User: i & 63, Time: int64(i), Host: "recovery.bench.example"}); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := store.Open(store.Config{Dir: dir, Fsync: store.FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		if got := st.Recovery().ReplayedRecords; got != visits {
			b.Fatalf("replayed %d records, want %d", got, visits)
		}
		st.Close()
	}
	b.ReportMetric(float64(visits)*float64(b.N)/b.Elapsed().Seconds(), "records/s")
}

// --- Section 7.2 extensions ---------------------------------------------

func BenchmarkExtECHProfiling(b *testing.B) {
	s := setupBench(b)
	for _, c := range []struct {
		name string
		prob float64
	}{{"ech0", 0}, {"ech40", 0.4}, {"ech100", 1}} {
		b.Run(c.name, func(b *testing.B) {
			var r experiment.ExtResult
			for i := 0; i < b.N; i++ {
				var err error
				ch := sniffer.ChannelTLS
				if c.prob >= 1 {
					ch = sniffer.ChannelECH
				}
				r, err = experiment.RunExtension(s, experiment.ExtConfig{
					Wire:       sniffer.WireConfig{Channel: ch, ECHProb: c.prob, Seed: 501},
					ResolveIPs: true,
					Seed:       503,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MatchRate(), "match-rate")
			b.ReportMetric(r.FallbackShare, "ip-fallback-share")
		})
	}
}

func BenchmarkExtNATHouseholds(b *testing.B) {
	s := setupBench(b)
	for _, n := range []int{1, 3, 6} {
		b.Run(map[int]string{1: "nat1", 3: "nat3", 6: "nat6"}[n], func(b *testing.B) {
			var r experiment.ExtResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = experiment.RunExtension(s, experiment.ExtConfig{
					Wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS, NATSize: n, Seed: 505},
					Seed: 507,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MatchRate(), "match-rate")
			b.ReportMetric(float64(r.Profiled), "wire-identities")
		})
	}
}

func BenchmarkAblationDailyRetrain(b *testing.B) {
	s := setupBench(b)
	for _, c := range []struct {
		name  string
		daily bool
	}{{"one-model", false}, {"daily-retrain", true}} {
		b.Run(c.name, func(b *testing.B) {
			var r experiment.CampaignResult
			for i := 0; i < b.N; i++ {
				var err error
				r, err = experiment.RunCampaign(s, s.Profiler,
					experiment.CampaignConfig{Seed: 11, DailyRetrain: c.daily})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(r.MeanEavesAffinity, "eaves-affinity")
		})
	}
}

// --- Serving index (parallel top-k vs serial scan) ----------------------

// nearestBenchModel lazily builds a production-sized frozen model
// (100K hosts x 128 dims, the scale the paper's ISP vantage implies) so
// both scan paths query identical embeddings.
var (
	nnOnce  sync.Once
	nnModel *core.Model
	nnErr   error
)

func nearestBenchModel(b *testing.B) *core.Model {
	b.Helper()
	nnOnce.Do(func() {
		const vocab, dim = 100_000, 128
		rng := stats.NewRNG(512)
		hosts := make([]string, vocab)
		for i := range hosts {
			hosts[i] = "h" + strconv.Itoa(i) + ".example"
		}
		in := make([]float64, vocab*dim)
		for i := range in {
			in[i] = rng.Float64()*2 - 1
		}
		nnModel, nnErr = core.NewModelFromVectors(hosts, dim, in)
	})
	if nnErr != nil {
		b.Fatal(nnErr)
	}
	return nnModel
}

// BenchmarkNearestToVector compares the serial float64 scan against the
// packed parallel index at vocab=100K, dim=128, k=1000 — the old and new
// code paths behind Profiler neighbourhood queries.
func BenchmarkNearestToVector(b *testing.B) {
	m := nearestBenchModel(b)
	q := m.VectorByID(17)
	const k = 1000
	bytesPerQuery := int64(m.Vocab().Len()) * 128 * 4

	b.Run("serial", func(b *testing.B) {
		b.SetBytes(bytesPerQuery * 2) // float64 rows
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := m.NearestToVector(q, k, nil); len(got) != k {
				b.Fatalf("got %d neighbours", len(got))
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		ix := m.SimilarityIndex() // built outside the timer
		var dst []index.Result
		b.SetBytes(bytesPerQuery)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			dst = ix.SearchAppend(dst[:0], q, k, 0, index.NoExclude)
			if len(dst) != k {
				b.Fatalf("got %d results", len(dst))
			}
		}
	})
}

// BenchmarkProfileBatch compares profiling a block of sessions one at a
// time through the serial scan (the pre-index path) against the batch
// API over the parallel index.
func BenchmarkProfileBatch(b *testing.B) {
	s := setupBench(b)
	per := s.Filtered.PerUserVisits()
	var sessions [][]string
	for _, uid := range s.Filtered.Users() {
		visits := per[uid]
		if sess := s.Filtered.Session(uid, visits[len(visits)/2].Time, 1200); len(sess) > 0 {
			sessions = append(sessions, sess)
		}
		if len(sessions) == 64 {
			break
		}
	}
	if len(sessions) == 0 {
		b.Fatal("no bench sessions")
	}
	cfg := core.ProfilerConfig{N: 40, Agg: core.AggIDF}

	b.Run("sequential-serial", func(b *testing.B) {
		serialCfg := cfg
		serialCfg.SerialScan = true
		prof := core.NewProfiler(s.Model, s.Ontology, serialCfg)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, sess := range sessions {
				if _, err := prof.ProfileSession(sess); err != nil && err != core.ErrNoLabels {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(sessions)), "sessions")
	})
	b.Run("batch-indexed", func(b *testing.B) {
		prof := core.NewProfiler(s.Model, s.Ontology, cfg)
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, errs := prof.ProfileSessions(ctx, sessions)
			for _, err := range errs {
				if err != nil && err != core.ErrNoLabels {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(len(sessions)), "sessions")
	})
}

// --- Approximate neighbour search (HNSW vs exact scan) ------------------

// annBenchState lazily builds one benchmark scale: a clustered corpus
// (the shape trained embeddings take), its packed exact index, the HNSW
// graph, session-like mixture queries and their exact top-50 ground
// truth. Everything heavy happens once, outside every timer.
type annBenchState struct {
	rows, dim, clusters int

	once    sync.Once
	ix      *index.Index
	ann     *index.ANN
	queries [][]float64
	exact   [][]index.Result
}

var (
	annBench100K = annBenchState{rows: 100_000, dim: 128, clusters: 1500}
	annBench470K = annBenchState{rows: 470_000, dim: 128, clusters: 6000}
)

const annBenchK = 50

func (s *annBenchState) setup(b *testing.B) {
	b.Helper()
	s.once.Do(func() {
		rng := stats.NewRNG(uint64(s.rows))
		centroids := make([]float64, s.clusters*s.dim)
		for i := range centroids {
			centroids[i] = rng.Float64()*2 - 1
		}
		vecs := make([]float64, s.rows*s.dim)
		for r := 0; r < s.rows; r++ {
			if r%5 == 4 { // long-tail hosts
				for i := 0; i < s.dim; i++ {
					vecs[r*s.dim+i] = rng.Float64()*2 - 1
				}
				continue
			}
			c := r % s.clusters
			for i := 0; i < s.dim; i++ {
				vecs[r*s.dim+i] = centroids[c*s.dim+i] + rng.NormFloat64()*0.35
			}
		}
		s.ix = index.New(vecs, s.rows, s.dim, index.Config{})
		s.ann = s.ix.BuildANN(index.ANNConfig{Seed: 99})

		// Eq.(3)-shaped queries: weighted same-topic host mixtures plus
		// one long-tail host, lightly perturbed.
		s.queries = make([][]float64, 32)
		s.exact = make([][]index.Result, len(s.queries))
		for qi := range s.queries {
			q := make([]float64, s.dim)
			anchor := rng.Intn(s.rows)
			for anchor%5 == 4 {
				anchor = rng.Intn(s.rows)
			}
			for h := 0; h < 3+rng.Intn(6); h++ {
				r := (anchor + h*s.clusters) % s.rows
				if r%5 == 4 {
					r = (r + s.clusters) % s.rows
				}
				w := 0.3 + rng.Float64()
				for i := 0; i < s.dim; i++ {
					q[i] += w * vecs[r*s.dim+i]
				}
			}
			tail := rng.Intn(s.rows/5)*5 + 4
			for i := 0; i < s.dim; i++ {
				q[i] += 0.3*vecs[tail*s.dim+i] + (rng.Float64()*2-1)*0.05
			}
			s.queries[qi] = q
			s.exact[qi] = s.ix.SearchAppend(nil, q, annBenchK, 0, index.NoExclude)
		}
	})
}

// BenchmarkNearestToVectorANN is the recall/latency trade-off table of
// the ANN layer: at 100K x 128 and the paper's 470K x 128 hostname
// scale, the exact parallel scan against the HNSW graph over an ef
// sweep, with recall@{1,10,50} per ef reported next to the timings.
func BenchmarkNearestToVectorANN(b *testing.B) {
	for _, s := range []*annBenchState{&annBench100K, &annBench470K} {
		b.Run(strconv.Itoa(s.rows/1000)+"Kx"+strconv.Itoa(s.dim), func(b *testing.B) {
			s.setup(b)
			bytesPerQuery := int64(s.rows) * int64(s.dim) * 4

			b.Run("exact", func(b *testing.B) {
				var dst []index.Result
				b.SetBytes(bytesPerQuery)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dst = s.ix.SearchAppend(dst[:0], s.queries[i%len(s.queries)], annBenchK, 0, index.NoExclude)
					if len(dst) != annBenchK {
						b.Fatalf("got %d results", len(dst))
					}
				}
			})
			for _, ef := range []int{32, 64, 128, 256} {
				b.Run("ann-ef"+strconv.Itoa(ef), func(b *testing.B) {
					// Recall against the exact ground truth, outside the
					// timer; the timed loop then runs the same queries.
					var r1, r10, r50 float64
					fallbacks := 0
					for qi, q := range s.queries {
						res, fell := s.ann.SearchAppend(nil, q, annBenchK, ef, 0, index.NoExclude)
						if fell {
							fallbacks++
						}
						ex := s.exact[qi]
						r1 += index.Recall(ex[:1], res[:min(1, len(res))])
						r10 += index.Recall(ex[:10], res[:min(10, len(res))])
						r50 += index.Recall(ex, res)
					}
					n := float64(len(s.queries))
					var dst []index.Result
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						dst, _ = s.ann.SearchAppend(dst[:0], s.queries[i%len(s.queries)], annBenchK, ef, 0, index.NoExclude)
					}
					b.StopTimer()
					_ = dst
					b.ReportMetric(r1/n, "recall@1")
					b.ReportMetric(r10/n, "recall@10")
					b.ReportMetric(r50/n, "recall@50")
					b.ReportMetric(float64(fallbacks), "fallbacks")
				})
			}
		})
	}
}
