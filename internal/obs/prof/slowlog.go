package prof

import (
	"sync"
	"time"
)

// A SlowEntry is one recorded slow request: what breached, by how
// much, and the handles (trace ID, capture IDs) that explain it.
type SlowEntry struct {
	Endpoint string  `json:"endpoint"`
	Code     int     `json:"code"`
	Seconds  float64 `json:"seconds"`
	TraceID  string  `json:"trace_id,omitempty"`
	// CaptureIDs are the /debug/prof/<id> profiles snapshotted when
	// this request breached, when the trigger was not in cooldown.
	CaptureIDs []uint64 `json:"capture_ids,omitempty"`
	UnixNano   int64    `json:"unix_nano"`
}

// A SlowLog retains the most recent slow requests for /debug/statusz.
// Fixed capacity, oldest evicted. Safe for concurrent use and on a nil
// receiver.
type SlowLog struct {
	mu      sync.Mutex
	cap     int
	entries []SlowEntry // oldest first
}

// NewSlowLog returns a log retaining the most recent n entries
// (non-positive selects 32).
func NewSlowLog(n int) *SlowLog {
	if n <= 0 {
		n = 32
	}
	return &SlowLog{cap: n}
}

// Add records one slow request. Safe on nil.
func (l *SlowLog) Add(e SlowEntry) {
	if l == nil {
		return
	}
	if e.UnixNano == 0 {
		e.UnixNano = time.Now().UnixNano()
	}
	l.mu.Lock()
	if len(l.entries) >= l.cap {
		l.entries = l.entries[1:]
	}
	l.entries = append(l.entries, e)
	l.mu.Unlock()
}

// Snapshot lists the retained entries, newest first. Safe on nil.
func (l *SlowLog) Snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	for i, e := range l.entries {
		out[len(out)-1-i] = e
	}
	return out
}
