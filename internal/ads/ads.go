// Package ads models the advertising side of the paper's experiment: the
// database of creatives collected during the data-collection phase
// (~12K ads after filtering), the eavesdropper's relevant-ad selection
// (20 nearest labelled hosts by Euclidean distance, Section 5.4), the
// ad-network comparator serving a realistic mix of targeted, contextual
// and premium ads, and the click model that turns profile quality into
// click-through rate.
package ads

import (
	"fmt"
	"sort"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
	"hostprof/internal/synth"
)

// CreativeSize is a standard IAB display size; the extension replaced an
// ad only when a similarly sized creative was available (Section 5.3).
type CreativeSize struct {
	W, H int
}

// Standard sizes used by the generator.
var standardSizes = []CreativeSize{
	{300, 250}, {728, 90}, {160, 600}, {320, 50}, {300, 600}, {970, 250},
}

// Ad is one creative with its landing page and topical ground truth.
type Ad struct {
	ID int
	// LandingHost is the hostname of the landing page; its ontology
	// vector is the ad's categorization.
	LandingHost string
	// Categories is the second-level category vector of the landing
	// page.
	Categories ontology.Vector
	// TopLevel caches Categories folded to top-level topics, for the
	// click model and Figure 6 histograms.
	TopLevel []float64
	// Size is the creative size.
	Size CreativeSize
}

// DB is the ad inventory, indexed by landing host.
type DB struct {
	tax    *ontology.Taxonomy
	ads    []Ad
	byHost map[string][]int
}

// NewDB returns an empty inventory over tax.
func NewDB(tax *ontology.Taxonomy) *DB {
	return &DB{tax: tax, byHost: make(map[string][]int)}
}

// Add inserts an ad, assigning its ID, folding its top-level vector.
func (db *DB) Add(landingHost string, cats ontology.Vector, size CreativeSize) Ad {
	ad := Ad{
		ID:          len(db.ads),
		LandingHost: landingHost,
		Categories:  cats,
		TopLevel:    cats.TopLevel(db.tax),
		Size:        size,
	}
	db.ads = append(db.ads, ad)
	db.byHost[landingHost] = append(db.byHost[landingHost], ad.ID)
	return ad
}

// Len returns the number of ads.
func (db *DB) Len() int { return len(db.ads) }

// Ad returns the ad with the given ID.
func (db *DB) Ad(id int) Ad { return db.ads[id] }

// Ads returns the full inventory; callers must not modify it.
func (db *DB) Ads() []Ad { return db.ads }

// ByHost returns the IDs of ads landing on host.
func (db *DB) ByHost(host string) []int { return db.byHost[host] }

// BuildConfig sizes inventory generation.
type BuildConfig struct {
	// AdsPerHost bounds how many creatives each labelled host
	// contributes (1..AdsPerHost). Default 3.
	AdsPerHost int
	// Seed drives size/count randomness.
	Seed uint64
}

// BuildFromOntology populates an inventory with ads landing on the
// ontology's labelled hosts — mirroring the paper, where ads collected
// during the observation phase were categorized via their landing pages.
func BuildFromOntology(ont *ontology.Ontology, cfg BuildConfig) *DB {
	if cfg.AdsPerHost <= 0 {
		cfg.AdsPerHost = 3
	}
	rng := stats.NewRNG(cfg.Seed ^ 0xad5)
	db := NewDB(ont.Taxonomy())
	for _, host := range ont.Hosts() {
		v, _ := ont.Lookup(host)
		n := 1 + rng.Intn(cfg.AdsPerHost)
		for i := 0; i < n; i++ {
			size := standardSizes[rng.Intn(len(standardSizes))]
			db.Add(host, v, size)
		}
	}
	return db
}

// Selector implements the paper's relevant-ad selection (Section 5.4):
// rank the labelled hosts H_L by Euclidean distance between their
// category vector and the session profile, take the K nearest (K = 20),
// and serve ads landing on those hosts.
type Selector struct {
	db *DB
	// hosts and vecs hold the labelled hosts with inventory.
	hosts []string
	vecs  []ontology.Vector
	k     int
}

// NewSelector indexes the inventory's landing hosts. k <= 0 selects the
// paper default of 20.
func NewSelector(db *DB, ont *ontology.Ontology, k int) (*Selector, error) {
	if k <= 0 {
		k = 20
	}
	s := &Selector{db: db, k: k}
	for _, host := range ont.Hosts() {
		if len(db.ByHost(host)) == 0 {
			continue
		}
		v, _ := ont.Lookup(host)
		s.hosts = append(s.hosts, host)
		s.vecs = append(s.vecs, v)
	}
	if len(s.hosts) == 0 {
		return nil, fmt.Errorf("ads: no labelled hosts with inventory")
	}
	return s, nil
}

// K returns the neighbour count used for selection.
func (s *Selector) K() int { return s.k }

// Select returns up to maxAds ads for the given session profile, drawn
// from the K labelled hosts nearest in category space. The paper sends 20
// eavesdropper ads per report.
func (s *Selector) Select(profile ontology.Vector, maxAds int) []Ad {
	type hd struct {
		idx  int
		dist float64
	}
	ds := make([]hd, len(s.hosts))
	for i, v := range s.vecs {
		ds[i] = hd{idx: i, dist: stats.Euclidean(profile, v)}
	}
	sort.Slice(ds, func(a, b int) bool {
		if ds[a].dist != ds[b].dist {
			return ds[a].dist < ds[b].dist
		}
		return s.hosts[ds[a].idx] < s.hosts[ds[b].idx]
	})
	k := s.k
	if k > len(ds) {
		k = len(ds)
	}
	var out []Ad
	for _, d := range ds[:k] {
		for _, id := range s.db.ByHost(s.hosts[d.idx]) {
			out = append(out, s.db.Ad(id))
			if len(out) >= maxAds {
				return out
			}
		}
	}
	return out
}

// SizeMatch reports whether a replacement creative fits the slot of the
// original (Section 5.3: replace only when sizes are similar). Sizes
// match when both dimensions are within 20%.
func SizeMatch(slot, candidate CreativeSize) bool {
	within := func(a, b int) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return float64(d) <= 0.2*float64(a)
	}
	return within(slot.W, candidate.W) && within(slot.H, candidate.H)
}

// ClickModel converts user-ad affinity into click probability. The
// parameters are calibrated so that overall CTR lands in the paper's
// observed regime (≈0.1–0.3%).
type ClickModel struct {
	// Base is the click probability at zero affinity. Default 0.0004.
	Base float64
	// Lift scales the affinity contribution. Default 0.02.
	Lift float64
	rng  *stats.RNG
}

// NewClickModel returns a model with the given parameters; zero values
// select defaults.
func NewClickModel(base, lift float64, seed uint64) *ClickModel {
	if base <= 0 {
		base = 0.0004
	}
	if lift <= 0 {
		lift = 0.02
	}
	return &ClickModel{Base: base, Lift: lift, rng: stats.NewRNG(seed ^ 0xc11c4)}
}

// Prob returns the click probability of user u on ad.
func (m *ClickModel) Prob(u synth.User, ad Ad) float64 {
	p := m.Base + m.Lift*u.AffinityTo(ad.TopLevel)
	if p > 1 {
		p = 1
	}
	return p
}

// Click simulates one impression, returning whether it was clicked.
func (m *ClickModel) Click(u synth.User, ad Ad) bool {
	return m.rng.Float64() < m.Prob(u, ad)
}

// CTR is a click-through-rate accumulator.
type CTR struct {
	Impressions int64
	Clicks      int64
}

// Observe records one impression.
func (c *CTR) Observe(clicked bool) {
	c.Impressions++
	if clicked {
		c.Clicks++
	}
}

// Rate returns clicks/impressions (0 when empty).
func (c *CTR) Rate() float64 {
	if c.Impressions == 0 {
		return 0
	}
	return float64(c.Clicks) / float64(c.Impressions)
}

// Percent returns the rate as a percentage, the unit the paper reports.
func (c *CTR) Percent() float64 { return 100 * c.Rate() }
