package stats

import (
	"math"
	"testing"
)

func TestMannWhitneyKnownValue(t *testing.T) {
	// Classic example (Mann & Whitney style): clearly separated groups.
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{6, 7, 8, 9, 10}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.U != 0 {
		t.Fatalf("U = %v, want 0 (complete separation)", r.U)
	}
	if !r.Significant(0.05) {
		t.Fatalf("complete separation not significant: p=%v", r.P)
	}
}

func TestMannWhitneySymmetricSamples(t *testing.T) {
	a := []float64{1, 3, 5, 7}
	b := []float64{2, 4, 6, 8}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.Significant(0.05) {
		t.Fatalf("interleaved samples significant: p=%v", r.P)
	}
	// Swapping the samples gives U' = n1*n2 - U and the same p.
	r2, _ := MannWhitneyU(b, a)
	if math.Abs(r.U+r2.U-16) > 1e-12 {
		t.Fatalf("U sum = %v, want 16", r.U+r2.U)
	}
	if math.Abs(r.P-r2.P) > 1e-12 {
		t.Fatalf("p not symmetric: %v vs %v", r.P, r2.P)
	}
}

func TestMannWhitneyScipyReference(t *testing.T) {
	// scipy.stats.mannwhitneyu([1,4,5,6,7],[2,3,3,3,8],
	//   alternative='two-sided', method='asymptotic'):
	// U=15.0, p is not memorable — validate with a looser bound:
	// must be clearly insignificant and U computed exactly.
	a := []float64{1, 4, 5, 6, 7}
	b := []float64{2, 3, 3, 3, 8}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks: 1→1, 2→2, 3,3,3→avg 4, 4→6, 5→7, 6→8, 7→9, 8→10.
	// R1 = 1+6+7+8+9 = 31, U1 = 31 - 15 = 16.
	if r.U != 16 {
		t.Fatalf("U = %v, want 16", r.U)
	}
	if r.Significant(0.05) {
		t.Fatalf("should be insignificant: p=%v", r.P)
	}
}

func TestMannWhitneyAllTied(t *testing.T) {
	a := []float64{5, 5, 5}
	b := []float64{5, 5, 5}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P != 1 || r.Z != 0 {
		t.Fatalf("tied samples: %+v", r)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for tiny sample")
	}
}

func TestMannWhitneyDetectsShift(t *testing.T) {
	rng := NewRNG(55)
	a := make([]float64, 60)
	b := make([]float64, 60)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + 1.2
	}
	r, err := MannWhitneyU(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.01) {
		t.Fatalf("large shift not detected: p=%v", r.P)
	}
	if r.Z >= 0 {
		t.Fatalf("Z sign wrong for a < b: %v", r.Z)
	}
}

func TestNormalSF(t *testing.T) {
	cases := []struct{ z, p float64 }{
		{0, 0.5},
		{1.959964, 0.025},
		{2.575829, 0.005},
	}
	for _, c := range cases {
		if got := normalSF(c.z); math.Abs(got-c.p) > 1e-4 {
			t.Errorf("normalSF(%v) = %v, want %v", c.z, got, c.p)
		}
	}
}
