package obs

import (
	"bufio"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): families sorted by name, one
// # HELP / # TYPE header per family, histogram buckets cumulative with
// a trailing +Inf. Callback gauges are evaluated without the registry
// lock held.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the registry in OpenMetrics-flavoured text:
// the same families as WritePrometheus plus per-bucket trace-ID
// exemplars (`# {trace_id="..."} value ts`) and a terminating # EOF.
// Scrapers that negotiate application/openmetrics-text get this format
// from MetricsHandler.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	ms, help := r.collect()
	bw := bufio.NewWriter(w)
	prev := ""
	for _, m := range ms {
		if m.name != prev {
			prev = m.name
			if h := help[m.name]; h != "" {
				bw.WriteString("# HELP ")
				bw.WriteString(m.name)
				bw.WriteByte(' ')
				bw.WriteString(escapeHelp(h))
				bw.WriteByte('\n')
			}
			bw.WriteString("# TYPE ")
			bw.WriteString(m.name)
			bw.WriteByte(' ')
			bw.WriteString(m.kind.String())
			bw.WriteByte('\n')
		}
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, "", m.labels, "", formatInt(m.counter.Value()))
			bw.WriteByte('\n')
		case kindGauge:
			writeSample(bw, m.name, "", m.labels, "", formatFloat(m.gauge.Value()))
			bw.WriteByte('\n')
		case kindGaugeFunc:
			writeSample(bw, m.name, "", m.labels, "", formatFloat(m.fn()))
			bw.WriteByte('\n')
		case kindHistogram:
			h := m.hist
			var cum int64
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				writeSample(bw, m.name, "_bucket", m.labels, formatFloat(ub), formatInt(cum))
				if openMetrics {
					writeExemplar(bw, h.exemplar(i))
				}
				bw.WriteByte('\n')
			}
			// The +Inf bucket equals the total count by construction.
			writeSample(bw, m.name, "_bucket", m.labels, "+Inf", formatInt(h.Count()))
			if openMetrics {
				writeExemplar(bw, h.exemplar(len(h.upper)))
			}
			bw.WriteByte('\n')
			writeSample(bw, m.name, "_sum", m.labels, "", formatFloat(h.Sum()))
			bw.WriteByte('\n')
			writeSample(bw, m.name, "_count", m.labels, "", formatInt(h.Count()))
			bw.WriteByte('\n')
		}
	}
	if openMetrics {
		bw.WriteString("# EOF\n")
	}
	return bw.Flush()
}

// writeExemplar appends an OpenMetrics exemplar clause to the current
// bucket line: ` # {trace_id="..."} value timestamp`.
func writeExemplar(bw *bufio.Writer, e *Exemplar) {
	if e == nil {
		return
	}
	bw.WriteString(` # {trace_id="`)
	bw.WriteString(escapeLabel(e.TraceID))
	bw.WriteString(`"} `)
	bw.WriteString(formatFloat(e.Value))
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(float64(e.UnixNano) / 1e9))
}

// writeSample emits one exposition line: name+suffix{labels[,le=le]} value.
func writeSample(bw *bufio.Writer, name, suffix string, labels []Label, le, value string) {
	bw.WriteString(name)
	bw.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		bw.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(l.Name)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(l.Value))
			bw.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				bw.WriteByte(',')
			}
			bw.WriteString(`le="`)
			bw.WriteString(le)
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote and newline.
func escapeLabel(s string) string { return labelEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// escapeHelp escapes HELP text (backslash and newline only).
func escapeHelp(s string) string { return helpEscaper.Replace(s) }

// Families returns the set of family names with at least one
// registered series — what a page composed of several sources needs to
// avoid duplicate # TYPE headers. Safe on nil (returns nil).
func (r *Registry) Families() map[string]bool {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]bool, len(r.metrics))
	for _, m := range r.metrics {
		out[m.name] = true
	}
	return out
}

// WriteSnapshots renders decoded metric snapshots (e.g. a federated
// peer's /varz body) in the Prometheus text format: families sorted by
// name, one # TYPE header per family, extra labels appended to every
// series. skip, when non-nil, omits whole families — the caller's own
// registry may already have exposed them on the same page. Histogram
// bucket counts in a MetricSnapshot are already cumulative, so they
// are emitted as-is with the +Inf bucket synthesized from Count.
// Exemplars are not rendered.
func WriteSnapshots(w io.Writer, snaps []MetricSnapshot, extra []Label, skip func(family string) bool) error {
	type row struct {
		snap   MetricSnapshot
		labels []Label
		key    string
	}
	rows := make([]row, 0, len(snaps))
	for _, s := range snaps {
		name := sanitizeName(s.Name, true)
		if name == "" || (skip != nil && skip(name)) {
			continue
		}
		labels := make([]Label, 0, len(s.Labels)+len(extra))
		for k, v := range s.Labels {
			labels = append(labels, Label{Name: k, Value: v})
		}
		labels = append(labels, extra...)
		labels = canonLabels(labels)
		s.Name = name
		rows = append(rows, row{snap: s, labels: labels, key: name + "\x00" + labelString(labels)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].key < rows[j].key })
	bw := bufio.NewWriter(w)
	prev := ""
	for _, rw := range rows {
		s := rw.snap
		if s.Name != prev {
			prev = s.Name
			bw.WriteString("# TYPE ")
			bw.WriteString(s.Name)
			bw.WriteByte(' ')
			bw.WriteString(s.Kind)
			bw.WriteByte('\n')
		}
		switch s.Kind {
		case "histogram":
			for _, b := range s.Buckets {
				writeSample(bw, s.Name, "_bucket", rw.labels, formatFloat(b.LE), formatInt(b.Count))
				bw.WriteByte('\n')
			}
			writeSample(bw, s.Name, "_bucket", rw.labels, "+Inf", formatInt(s.Count))
			bw.WriteByte('\n')
			writeSample(bw, s.Name, "_sum", rw.labels, "", formatFloat(s.Sum))
			bw.WriteByte('\n')
			writeSample(bw, s.Name, "_count", rw.labels, "", formatInt(s.Count))
			bw.WriteByte('\n')
		default: // counter, gauge
			writeSample(bw, s.Name, "", rw.labels, "", formatFloat(s.Value))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}

// BucketSnapshot is one cumulative histogram bucket in a snapshot. The
// implicit +Inf bucket is omitted; Count covers all observations.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
	// Exemplar is the bucket's most recent trace-linked observation,
	// when one has been recorded.
	Exemplar *Exemplar `json:"exemplar,omitempty"`
}

// MetricSnapshot is one metric series in a point-in-time snapshot.
type MetricSnapshot struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value is set for counters and gauges.
	Value float64 `json:"value"`
	// Count, Sum and Buckets are set for histograms.
	Count   int64            `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// Snapshot returns every registered metric with its current value, in
// the same deterministic order as WritePrometheus. Callback gauges are
// evaluated without the registry lock held.
func (r *Registry) Snapshot() []MetricSnapshot {
	ms, _ := r.collect()
	out := make([]MetricSnapshot, 0, len(ms))
	for _, m := range ms {
		s := MetricSnapshot{Name: m.name, Kind: m.kind.String()}
		if len(m.labels) > 0 {
			s.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				s.Labels[l.Name] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindGaugeFunc:
			s.Value = m.fn()
		case kindHistogram:
			h := m.hist
			s.Count = h.Count()
			s.Sum = h.Sum()
			s.Buckets = make([]BucketSnapshot, len(h.upper))
			var cum int64
			for i, ub := range h.upper {
				cum += h.counts[i].Load()
				s.Buckets[i] = BucketSnapshot{LE: ub, Count: cum, Exemplar: h.exemplar(i)}
			}
		}
		out = append(out, s)
	}
	return out
}
