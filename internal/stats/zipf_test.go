package stats

import (
	"math"
	"testing"
)

func TestZipfRange(t *testing.T) {
	z := NewZipf(NewRNG(1), 1.1, 50)
	for i := 0; i < 5000; i++ {
		v := z.Draw()
		if v < 0 || v >= 50 {
			t.Fatalf("draw out of range: %d", v)
		}
	}
}

func TestZipfRankOrdering(t *testing.T) {
	z := NewZipf(NewRNG(2), 1.0, 20)
	counts := make([]int, 20)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	// Rank 0 must dominate rank 10 and rank 10 must beat rank 19.
	if counts[0] <= counts[10] || counts[10] <= counts[19] {
		t.Fatalf("Zipf ordering violated: %v", counts)
	}
	// Frequency of rank 0 should be close to theoretical probability.
	want := z.Prob(0)
	got := float64(counts[0]) / 100000
	if math.Abs(got-want) > 0.01 {
		t.Fatalf("rank-0 frequency %v, want ~%v", got, want)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(NewRNG(3), 1.5, 100)
	var s float64
	for i := 0; i < 100; i++ {
		s += z.Prob(i)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", s)
	}
	if z.Prob(-1) != 0 || z.Prob(100) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewZipf(NewRNG(1), 1, 0) },
		func() { NewZipf(NewRNG(1), 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestWeightedProportions(t *testing.T) {
	w := NewWeighted(NewRNG(4), []float64{1, 3, 6})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Draw()]++
	}
	for i, want := range []float64{0.1, 0.3, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("outcome %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestWeightedZeroWeightNeverDrawn(t *testing.T) {
	w := NewWeighted(NewRNG(5), []float64{0, 1, 0})
	for i := 0; i < 1000; i++ {
		if v := w.Draw(); v != 1 {
			t.Fatalf("drew zero-weight outcome %d", v)
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewWeighted(NewRNG(1), nil) },
		func() { NewWeighted(NewRNG(1), []float64{-1, 2}) },
		func() { NewWeighted(NewRNG(1), []float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}
