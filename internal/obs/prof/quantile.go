// Package prof is the repo's third observability pillar, after metrics
// (internal/obs) and traces (internal/obs/tracer): continuous
// profiling and latency SLOs, dependency-free like its siblings.
//
//   - A background Profiler periodically captures CPU, heap, mutex,
//     block and goroutine profiles into a bounded in-memory ring of
//     pprof-gzip bytes, downloadable at /debug/prof/. Requests that
//     breach the slow-request threshold trigger an extra
//     goroutine+mutex capture tagged with the request's trace ID, so a
//     slow trace in /debug/traces links to the profile that explains
//     it.
//   - Windowed fixed-bucket quantile estimators feed per-endpoint SLOs
//     (latency target + objective) whose burn rates are exported as
//     hostprof_slo_* gauges.
//   - A Statusz page aggregates build info, SLO state, the profile
//     ring and whatever sections the server registers into one
//     operational view at /debug/statusz.
//
// Cost contract (mirrors obs and tracer): every method is safe on a
// nil receiver, so instrumentation is wired unconditionally and a
// disabled profiler or SLO is a nil check — no allocation on the
// request path.
package prof

import (
	"math"
	"sort"
	"sync"
	"time"
)

// A Windowed estimates latency quantiles over a sliding time window
// using fixed cumulative buckets — the same histogram model as
// internal/obs, time-sliced so old observations age out. The window is
// divided into slices; each observation lands in the slice of its
// arrival time, and a quantile query merges only the slices still
// inside the window. Resolution is bucket-bounded (quantiles are
// linearly interpolated within a bucket), which is exactly the
// trade-off Prometheus histogram_quantile makes, and window expiry is
// slice-granular.
//
// All methods are safe for concurrent use and on a nil receiver.
type Windowed struct {
	mu     sync.Mutex
	upper  []float64 // sorted bucket upper bounds; +Inf implicit
	counts [][]int64 // [slice][bucket]; bucket len(upper) is +Inf
	epochs []int64   // which epoch each slice currently holds; -1 empty
	step   int64     // slice width in nanoseconds
	now    func() int64
}

// NewWindowed builds an estimator covering roughly window, divided into
// slices time slices (the expiry granularity). Bucket bounds follow
// obs conventions: nil selects obs.DefBuckets-like latency bounds;
// duplicates and non-finite bounds are dropped. window must be
// positive; slices below 1 is coerced to 1.
func NewWindowed(window time.Duration, slices int, buckets []float64) *Windowed {
	if window <= 0 {
		window = time.Minute
	}
	if slices < 1 {
		slices = 1
	}
	if len(buckets) == 0 {
		buckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}
	}
	upper := dedupBounds(buckets)
	w := &Windowed{
		upper:  upper,
		counts: make([][]int64, slices),
		epochs: make([]int64, slices),
		step:   int64(window) / int64(slices),
		now:    func() int64 { return time.Now().UnixNano() },
	}
	if w.step <= 0 {
		w.step = 1
	}
	for i := range w.counts {
		w.counts[i] = make([]int64, len(upper)+1)
		w.epochs[i] = -1
	}
	return w
}

// dedupBounds sorts bounds ascending, dropping duplicates and
// non-finite entries.
func dedupBounds(bounds []float64) []float64 {
	out := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			out = append(out, b)
		}
	}
	sort.Float64s(out)
	n := 0
	for i, b := range out {
		if i == 0 || b != out[n-1] {
			out[n] = b
			n++
		}
	}
	return out[:n]
}

// setNow fixes the estimator's clock for tests.
func (w *Windowed) setNow(now func() int64) {
	w.mu.Lock()
	w.now = now
	w.mu.Unlock()
}

// Observe records one sample (seconds, by the repo's latency
// convention, though any unit works as long as buckets match). Safe on
// a nil receiver.
func (w *Windowed) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	epoch := w.now() / w.step
	idx := int(epoch % int64(len(w.counts)))
	if w.epochs[idx] != epoch {
		// The slice last held data from a full window ago; recycle it.
		c := w.counts[idx]
		for i := range c {
			c[i] = 0
		}
		w.epochs[idx] = epoch
	}
	i := sort.SearchFloat64s(w.upper, v)
	w.counts[idx][i]++
	w.mu.Unlock()
}

// Snapshot merges the live slices into one non-cumulative bucket-count
// vector (aligned with Buckets(); the final entry is the +Inf bucket)
// plus the total observation count. Safe on a nil receiver (returns
// nil, 0).
func (w *Windowed) Snapshot() ([]int64, int64) {
	if w == nil {
		return nil, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	epoch := w.now() / w.step
	oldest := epoch - int64(len(w.counts)) + 1
	merged := make([]int64, len(w.upper)+1)
	var total int64
	for s, e := range w.epochs {
		if e < oldest || e < 0 {
			continue
		}
		for i, c := range w.counts[s] {
			merged[i] += c
			total += c
		}
	}
	return merged, total
}

// Buckets returns the estimator's upper bounds (the +Inf bucket is
// implicit). The slice is shared; do not mutate. Safe on nil.
func (w *Windowed) Buckets() []float64 {
	if w == nil {
		return nil
	}
	return w.upper
}

// Count returns the number of observations inside the window. Safe on
// nil.
func (w *Windowed) Count() int64 {
	_, total := w.Snapshot()
	return total
}

// Quantile estimates the q-quantile (q in [0,1]) of the windowed
// distribution, interpolating linearly within the winning bucket. The
// +Inf bucket reports its lower bound (the largest finite upper
// bound). Returns NaN when the window is empty or q is out of range.
// Safe on a nil receiver.
func (w *Windowed) Quantile(q float64) float64 {
	counts, total := w.Snapshot()
	return EstimateQuantile(w.Buckets(), counts, total, q)
}

// CountAbove returns how many windowed observations exceeded bound.
// Exact when bound is one of the bucket bounds (the SLO tracker
// arranges this); otherwise the count is over the smallest covering
// bucket. Safe on nil.
func (w *Windowed) CountAbove(bound float64) (above, total int64) {
	counts, total := w.Snapshot()
	if w == nil || total == 0 {
		return 0, total
	}
	i := sort.SearchFloat64s(w.upper, bound)
	if i < len(w.upper) && w.upper[i] == bound {
		i++
	}
	for ; i < len(counts); i++ {
		above += counts[i]
	}
	return above, total
}

// EstimateQuantile computes the q-quantile from merged non-cumulative
// bucket counts (as produced by Windowed.Snapshot, possibly summed
// across several estimators) over the given upper bounds. This is the
// merge primitive: quantiles over any union of windows or endpoints
// come from adding count vectors, never from averaging quantiles.
func EstimateQuantile(upper []float64, counts []int64, total int64, q float64) float64 {
	if total <= 0 || q < 0 || q > 1 || len(counts) != len(upper)+1 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= rank {
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			if i == len(upper) {
				// +Inf bucket: no finite upper bound to interpolate
				// toward; report its lower edge.
				return lo
			}
			hi := upper[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// rank == total with rounding; the last non-empty bucket wins.
	for i := len(counts) - 1; i >= 0; i-- {
		if counts[i] > 0 {
			if i == len(upper) {
				return upper[len(upper)-1]
			}
			return upper[i]
		}
	}
	return math.NaN()
}
