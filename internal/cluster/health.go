package cluster

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"hostprof/internal/obs"
	"hostprof/internal/server"
)

// shardState is the gateway's view of one backend, updated by health
// probes and by request outcomes (a transport failure marks the shard
// dead immediately rather than waiting for the next probe). Guarded by
// Gateway.mu.
type shardState struct {
	name         string
	alive        bool // answered its last /readyz probe at all
	ready        bool // answered 200: trained and fully durable
	degraded     bool // serving memory-only (WAL detached)
	shedding     bool // a request was refused because this shard was down (shed window open)
	modelVersion string
	visits       int
	fails        int // consecutive failed probes
	lastErr      string
	lastProbe    time.Time
}

// ShardStatus is one shard's externally visible state (the /v1/cluster
// body element).
type ShardStatus struct {
	Backend      string `json:"backend"`
	Alive        bool   `json:"alive"`
	Ready        bool   `json:"ready"`
	Degraded     bool   `json:"degraded,omitempty"`
	ModelVersion string `json:"model_version,omitempty"`
	Visits       int    `json:"visits"`
	LastError    string `json:"last_error,omitempty"`
}

// ClusterStatus is the gateway's /v1/cluster (and /readyz detail) body.
type ClusterStatus struct {
	Backends     int              `json:"backends"`
	AliveShards  int              `json:"alive_shards"`
	ReadyShards  int              `json:"ready_shards"`
	ModelVersion string           `json:"model_version,omitempty"` // consensus version, "" when shards disagree or none trained
	Converged    bool             `json:"converged"`               // every alive shard serves the same non-empty version
	Shards       []ShardStatus    `json:"shards"`
	Migration    *MigrationStatus `json:"migration,omitempty"` // installed resize, or the last finished one
}

// wireShardGauges registers the per-backend health gauges. The
// callbacks read live state under g.mu at scrape time; a backend
// removed by SetBackends scrapes as 0/0/0 rather than unregistering
// (the registry keeps families forever — cheap, and the zeros document
// the departure).
func (g *Gateway) wireShardGauges(name string) {
	lbl := obs.L("backend", name)
	read := func(f func(*shardState) float64) func() float64 {
		return func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			s := g.shards[name]
			if s == nil {
				return 0
			}
			return f(s)
		}
	}
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	g.reg.GaugeFunc("hostprof_gateway_shard_up", read(func(s *shardState) float64 { return b2f(s.alive) }), lbl)
	g.reg.GaugeFunc("hostprof_gateway_shard_ready", read(func(s *shardState) float64 { return b2f(s.ready) }), lbl)
	g.reg.GaugeFunc("hostprof_gateway_model_version", read(func(s *shardState) float64 {
		return versionOrdinal(s.modelVersion)
	}), lbl)
}

// versionOrdinal maps a content version to a comparable-for-equality
// number (first 48 bits of the hex hash — exact in a float64), so
// "every shard exports the same hostprof_gateway_model_version" is a
// dashboard-checkable convergence signal. 0 means untrained.
func versionOrdinal(version string) float64 {
	if len(version) < 12 {
		return 0
	}
	n, err := strconv.ParseUint(version[:12], 16, 64)
	if err != nil {
		return 0
	}
	return float64(n)
}

// CheckHealth probes every shard's /readyz once, in parallel, and
// updates membership state. Returns the number of alive shards.
func (g *Gateway) CheckHealth(ctx context.Context) int {
	g.mu.Lock()
	names := make([]string, 0, len(g.shards))
	for name := range g.shards {
		names = append(names, name)
	}
	g.mu.Unlock()

	var wg sync.WaitGroup
	for _, name := range names {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			g.probeShard(ctx, name)
		}(name)
	}
	wg.Wait()

	g.mu.Lock()
	defer g.mu.Unlock()
	alive := 0
	for _, s := range g.shards {
		if s.alive {
			alive++
		}
	}
	return alive
}

// probeShard performs one /readyz exchange and folds the answer into
// the shard's state. Any HTTP answer (200 or 503) proves liveness; only
// a transport error marks the shard dead.
func (g *Gateway) probeShard(ctx context.Context, name string) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.ShardTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, name+"/readyz", nil)
	if err != nil {
		g.markProbe(name, false, server.Readiness{}, err.Error())
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.markProbe(name, false, server.Readiness{}, err.Error())
		return
	}
	defer resp.Body.Close()
	var rd server.Readiness
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&rd); err != nil {
		// Alive (it answered), but the body is not a shard readiness —
		// treat as not ready so no traffic routes there.
		g.markProbe(name, true, server.Readiness{}, "bad readyz body: "+err.Error())
		return
	}
	g.markProbe(name, true, rd, "")
}

// markProbe records a probe outcome. Transitions are logged once per
// edge, not per probe.
func (g *Gateway) markProbe(name string, alive bool, rd server.Readiness, errMsg string) {
	g.mu.Lock()
	s := g.shards[name]
	if s == nil { // removed by a concurrent SetBackends
		g.mu.Unlock()
		return
	}
	wasAlive, wasReady := s.alive, s.ready
	oldVersion := s.modelVersion
	shedClosed := alive && s.shedding
	if shedClosed {
		s.shedding = false
	}
	s.alive = alive
	s.ready = alive && rd.Ready
	s.degraded = rd.StoreDegraded
	s.modelVersion = rd.ModelVersion
	s.visits = rd.Visits
	s.lastErr = errMsg
	s.lastProbe = time.Now()
	if alive {
		s.fails = 0
	} else {
		s.fails++
	}
	nowReady := s.ready
	g.mu.Unlock()
	if wasAlive != alive {
		if alive {
			g.event(EventShardUp, name, "shard answering probes again")
		} else {
			g.event(EventShardDown, name, "shard stopped answering probes", "err", errMsg)
		}
	}
	if wasReady != nowReady {
		if nowReady {
			g.event(EventShardReady, name, "shard ready",
				"model_version", rd.ModelVersion)
		} else if wasAlive == alive { // the liveness event already tells the story
			g.event(EventShardUnready, name, "shard alive but not ready", "err", errMsg)
		}
	}
	if shedClosed {
		g.event(EventShedClose, name, "shed window closed: shard is back")
	}
	if alive && rd.ModelVersion != oldVersion && rd.ModelVersion != "" {
		g.event(EventModelVersion, name, "shard serving a new model version",
			"from", oldVersion, "to", rd.ModelVersion)
	}
	if wasAlive != alive || wasReady != nowReady {
		g.log.Info("shard state change",
			slog.String("backend", name),
			slog.Bool("alive", alive),
			slog.Bool("ready", alive && rd.Ready),
			slog.String("model_version", rd.ModelVersion),
			slog.String("err", errMsg))
	}
}

// markDead records an in-band transport failure (a proxied request that
// could not reach the shard), so routing stops before the next probe.
func (g *Gateway) markDead(name string, err error) {
	g.mu.Lock()
	s := g.shards[name]
	if s != nil && (s.alive || s.ready) {
		s.alive, s.ready = false, false
		s.fails++
		s.lastErr = err.Error()
		g.mu.Unlock()
		g.event(EventShardDown, name, "shard marked dead on request failure",
			"err", err.Error())
		g.log.Warn("shard marked dead on request failure",
			slog.String("backend", name), slog.String("err", err.Error()))
		return
	}
	g.mu.Unlock()
}

// noteShed records the shed-window-open edge for a down shard: the
// first refused request opens the window (one event, however many
// requests are refused inside it); the window closes when the shard
// answers a probe again (markProbe).
func (g *Gateway) noteShed(name string) {
	g.mu.Lock()
	s := g.shards[name]
	opened := s != nil && !s.shedding
	if opened {
		s.shedding = true
	}
	g.mu.Unlock()
	if opened {
		g.event(EventShedOpen, name, "shed window opened: requests for this shard's keyspace refused")
	}
}

// shardSnapshot returns a copy of one shard's state (zero value when
// unknown).
func (g *Gateway) shardSnapshot(name string) shardState {
	g.mu.Lock()
	defer g.mu.Unlock()
	if s := g.shards[name]; s != nil {
		return *s
	}
	return shardState{name: name}
}

// readyShards returns the shards currently routable for model-dependent
// work, in ring order.
func (g *Gateway) readyShards() []string {
	nodes := g.Ring().Nodes()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if s := g.shards[n]; s != nil && s.ready {
			out = append(out, n)
		}
	}
	return out
}

// aliveShards returns the shards answering probes, in ring order.
func (g *Gateway) aliveShards() []string {
	nodes := g.Ring().Nodes()
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if s := g.shards[n]; s != nil && s.alive {
			out = append(out, n)
		}
	}
	return out
}

// trainNode returns the designated training shard: the first alive
// backend in membership order (the live membership, which a completed
// resize rewrites — not the frozen config). Deterministic given the
// same health view, so concurrent retrains pick the same node; "" when
// the whole cluster is down.
func (g *Gateway) trainNode() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, name := range g.backends {
		if s := g.shards[name]; s != nil && s.alive {
			return name
		}
	}
	return ""
}

// ClusterStatus snapshots cluster health for /v1/cluster and the
// gateway's own /readyz.
func (g *Gateway) ClusterStatus() ClusterStatus {
	nodes := g.Ring().Nodes()
	st := ClusterStatus{Backends: len(nodes), Shards: make([]ShardStatus, 0, len(nodes))}
	consensus, mixed := "", false
	g.mu.Lock()
	for _, n := range nodes {
		s := g.shards[n]
		if s == nil {
			s = &shardState{name: n}
		}
		st.Shards = append(st.Shards, ShardStatus{
			Backend:      n,
			Alive:        s.alive,
			Ready:        s.ready,
			Degraded:     s.degraded,
			ModelVersion: s.modelVersion,
			Visits:       s.visits,
			LastError:    s.lastErr,
		})
		if s.alive {
			st.AliveShards++
			switch {
			case s.modelVersion == "":
				mixed = true
			case consensus == "":
				consensus = s.modelVersion
			case consensus != s.modelVersion:
				mixed = true
			}
		}
		if s.ready {
			st.ReadyShards++
		}
	}
	last := g.lastMigration
	g.mu.Unlock()
	if !mixed && consensus != "" {
		st.ModelVersion = consensus
		st.Converged = st.AliveShards > 0
	}
	if m := g.migration.Load(); m != nil {
		ms := m.Status()
		st.Migration = &ms
	} else {
		st.Migration = last
	}
	return st
}
