// Command benchjson converts `go test -bench` output read from stdin
// into a JSON array on stdout, so benchmark trajectories can be tracked
// machine-readably across PRs (see `make bench-json`).
//
// Each benchmark line
//
//	BenchmarkTrain/workers=4-8   10   11131 ns/op   42 B/op   2 allocs/op
//
// becomes
//
//	{"name":"Train/workers=4","procs":8,"iterations":10,
//	 "metrics":{"ns/op":11131,"B/op":42,"allocs/op":2}}
//
// Custom benchmark metrics (b.ReportMetric) are carried through under
// their reported unit names.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// parseLine parses one "Benchmark..." output line; ok is false for
// non-benchmark lines (headers, PASS, ok, etc.).
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 1
	if i := strings.LastIndex(name, "-"); i >= 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Procs: procs, Iterations: iters,
		Metrics: make(map[string]float64)}
	// The remainder alternates value, unit.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		r.Metrics[fields[i+1]] = v
	}
	return r, true
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if results == nil {
		results = []Result{}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
