package core

import (
	"errors"
	"testing"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// profilingFixture trains a toy model with two topical communities and
// labels a subset of hosts: topic-A hosts get category 0, topic-B hosts
// get category 1.
type profilingFixture struct {
	model *Model
	ont   *ontology.Ontology
	tax   *ontology.Taxonomy
	ta    []string
	tb    []string
}

func newProfilingFixture(t *testing.T, labelFrac float64) *profilingFixture {
	t.Helper()
	rng := stats.NewRNG(101)
	corpus, ta, tb := topicCorpus(rng, 12, 600, 12)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	tax := ontology.NewTaxonomy()
	ont := ontology.New(tax)
	nLab := int(labelFrac * float64(len(ta)))
	if nLab < 1 {
		nLab = 1
	}
	for i := 0; i < nLab; i++ {
		va := tax.NewVector()
		va[0] = 1
		ont.Add(ta[i], va)
		vb := tax.NewVector()
		vb[1] = 1
		ont.Add(tb[i], vb)
	}
	return &profilingFixture{model: m, ont: ont, tax: tax, ta: ta, tb: tb}
}

func TestProfileSessionTransfersLabels(t *testing.T) {
	// Label only 25% of hosts; profile a session of *unlabelled*
	// topic-A hosts. The embedding neighbourhood must pull in labelled
	// topic-A hosts and assign category 0 the most weight.
	fx := newProfilingFixture(t, 0.25)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 20})
	session := fx.ta[len(fx.ta)-4:] // unlabelled tail of topic A
	prof, err := p.ProfileSession(session)
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Valid() {
		t.Fatal("profile out of [0,1]")
	}
	if prof[0] <= prof[1] {
		t.Fatalf("topic-A session scored c0=%.3f c1=%.3f; want c0 > c1", prof[0], prof[1])
	}
}

func TestProfileSessionLabelledHostsDominate(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 5})
	// Session contains a labelled topic-B host: its alpha is 1.
	prof, err := p.ProfileSession([]string{fx.tb[0]})
	if err != nil {
		t.Fatal(err)
	}
	if prof[1] <= prof[0] {
		t.Fatalf("labelled host ignored: c0=%.3f c1=%.3f", prof[0], prof[1])
	}
}

func TestProfileSessionEmpty(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{})
	if _, err := p.ProfileSession(nil); !errors.Is(err, ErrEmptySession) {
		t.Fatalf("err = %v, want ErrEmptySession", err)
	}
}

func TestProfileSessionAllUnknownHosts(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{})
	_, err := p.ProfileSession([]string{"never-seen-1.example", "never-seen-2.example"})
	if !errors.Is(err, ErrNoLabels) {
		t.Fatalf("err = %v, want ErrNoLabels", err)
	}
}

func TestProfileSessionUnknownButLabelled(t *testing.T) {
	// A host missing from the vocabulary but present in the ontology
	// must still contribute with weight 1 (L is defined over the
	// session, not the vocabulary).
	fx := newProfilingFixture(t, 0.5)
	v := fx.tax.NewVector()
	v[7] = 1
	fx.ont.Add("oov-labelled.example", v)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 5})
	prof, err := p.ProfileSession([]string{"oov-labelled.example"})
	if err != nil {
		t.Fatal(err)
	}
	if prof[7] != 1 {
		t.Fatalf("c7 = %v, want 1", prof[7])
	}
}

func TestProfileSessionDedupFirstVisit(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 5})
	// A session visiting one labelled topic-A host once vs. fifty
	// times must produce the same profile (paper Section 4.1: repeat
	// visits within a window are collapsed).
	once, err := p.ProfileSession([]string{fx.ta[0], fx.tb[0]})
	if err != nil {
		t.Fatal(err)
	}
	many := []string{fx.ta[0]}
	for i := 0; i < 50; i++ {
		many = append(many, fx.ta[0])
	}
	many = append(many, fx.tb[0])
	rep, err := p.ProfileSession(many)
	if err != nil {
		t.Fatal(err)
	}
	for i := range once {
		if once[i] != rep[i] {
			t.Fatalf("dedup failed at category %d: %v vs %v", i, once[i], rep[i])
		}
	}
}

func TestProfileSessionSkipDedupDiffers(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	pd := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 5, SkipDedup: true})
	many := []string{fx.ta[0], fx.ta[0], fx.ta[0], fx.tb[0]}
	prof, err := pd.ProfileSession(many)
	if err != nil {
		t.Fatal(err)
	}
	// With dedup disabled the session vector tilts toward topic A; the
	// run must simply succeed and stay valid.
	if !prof.Valid() {
		t.Fatal("profile out of range")
	}
}

func TestSessionVectorAggregations(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	hosts := []string{fx.ta[0], fx.ta[1]}
	mean := NewProfiler(fx.model, fx.ont, ProfilerConfig{Agg: AggMean})
	sum := NewProfiler(fx.model, fx.ont, ProfilerConfig{Agg: AggSum})
	vMean, n1 := mean.SessionVector(hosts)
	vSum, n2 := sum.SessionVector(hosts)
	if n1 != 2 || n2 != 2 {
		t.Fatalf("in-vocab counts %d,%d", n1, n2)
	}
	for i := range vMean {
		if diff := vSum[i] - 2*vMean[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("sum != 2*mean at %d", i)
		}
	}
	idf := NewProfiler(fx.model, fx.ont, ProfilerConfig{Agg: AggIDF})
	vIDF, n3 := idf.SessionVector(hosts)
	if n3 != 2 {
		t.Fatalf("idf in-vocab count %d", n3)
	}
	if stats.Norm(vIDF) == 0 {
		t.Fatal("idf vector is zero")
	}
}

func TestSessionVectorAllOOV(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{})
	v, n := p.SessionVector([]string{"zzz.example"})
	if n != 0 {
		t.Fatalf("n = %d", n)
	}
	if stats.Norm(v) != 0 {
		t.Fatal("OOV session vector should be zero")
	}
}

func TestProfilerDefaultN(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{})
	if p.cfg.N != 1000 {
		t.Fatalf("default N = %d, want 1000 (paper Section 4.1)", p.cfg.N)
	}
}

func TestProfileValuesBounded(t *testing.T) {
	fx := newProfilingFixture(t, 1.0)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 50})
	for trial := 0; trial < 10; trial++ {
		session := []string{fx.ta[trial], fx.tb[(trial+3)%len(fx.tb)]}
		prof, err := p.ProfileSession(session)
		if err != nil {
			t.Fatal(err)
		}
		if !prof.Valid() {
			t.Fatalf("trial %d: profile out of [0,1]", trial)
		}
	}
}

func TestDedupFirst(t *testing.T) {
	in := []string{"a", "b", "a", "c", "b"}
	out := dedupFirst(in)
	if len(out) != 3 || out[0] != "a" || out[1] != "b" || out[2] != "c" {
		t.Fatalf("dedupFirst = %v", out)
	}
}

// Property: profiling is invariant (to floating-point tolerance) under
// permutation of a duplicate-free session — the algorithm is defined on
// the session *set* once first-visit dedup has run.
func TestProfilePermutationInvariantQuick(t *testing.T) {
	fx := newProfilingFixture(t, 0.5)
	p := NewProfiler(fx.model, fx.ont, ProfilerConfig{N: 10})
	base := append(append([]string{}, fx.ta[:4]...), fx.tb[:3]...)
	ref, err := p.ProfileSession(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(777)
	for trial := 0; trial < 20; trial++ {
		perm := append([]string(nil), base...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err := p.ProfileSession(perm)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if d := got[i] - ref[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d: category %d differs by %v", trial, i, d)
			}
		}
	}
}
