package core

import (
	"bytes"
	"math"
	"testing"

	"hostprof/internal/stats"
)

// topicCorpus builds a toy corpus with two disjoint topical communities:
// hosts within a topic co-occur, hosts across topics never do. The
// embedding must place same-topic hosts closer than cross-topic ones.
func topicCorpus(rng *stats.RNG, hostsPerTopic, sessions, sessionLen int) (corpus [][]string, topicA, topicB []string) {
	for i := 0; i < hostsPerTopic; i++ {
		topicA = append(topicA, "a"+string(rune('a'+i%26))+string(rune('a'+i/26))+".example")
		topicB = append(topicB, "b"+string(rune('a'+i%26))+string(rune('a'+i/26))+".example")
	}
	for s := 0; s < sessions; s++ {
		var pool []string
		if s%2 == 0 {
			pool = topicA
		} else {
			pool = topicB
		}
		seq := make([]string, sessionLen)
		for j := range seq {
			seq[j] = pool[rng.Intn(len(pool))]
		}
		corpus = append(corpus, seq)
	}
	return corpus, topicA, topicB
}

func smallConfig() TrainConfig {
	return TrainConfig{
		Dim:       16,
		Window:    2,
		Negative:  5,
		Subsample: -1, // disabled: the toy corpus is tiny
		MinCount:  1,
		Epochs:    3,
		Workers:   1,
		Seed:      42,
	}
}

func TestTrainSeparatesTopics(t *testing.T) {
	rng := stats.NewRNG(7)
	corpus, ta, tb := topicCorpus(rng, 10, 400, 12)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			s, err := m.Similarity(ta[i], ta[j])
			if err != nil {
				t.Fatal(err)
			}
			intra += s
			nIntra++
			s, _ = m.Similarity(tb[i], tb[j])
			intra += s
			nIntra++
			s, _ = m.Similarity(ta[i], tb[j])
			inter += s
			nInter++
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra <= inter+0.2 {
		t.Fatalf("embedding failed to separate topics: intra=%.3f inter=%.3f", intra, inter)
	}
}

func TestTrainDeterministicSingleWorker(t *testing.T) {
	rng := stats.NewRNG(9)
	corpus, _, _ := topicCorpus(rng, 6, 50, 8)
	m1, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f64bytes(m1.in), f64bytes(m2.in)) {
		t.Fatal("single-worker training is not deterministic")
	}
}

func f64bytes(xs []float64) []byte {
	b := make([]byte, 0, len(xs)*8)
	for _, x := range xs {
		u := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(u>>s))
		}
	}
	return b
}

func TestTrainSeedChangesResult(t *testing.T) {
	rng := stats.NewRNG(9)
	corpus, _, _ := topicCorpus(rng, 6, 50, 8)
	cfg := smallConfig()
	m1, _ := Train(corpus, cfg)
	cfg.Seed = 43
	m2, _ := Train(corpus, cfg)
	if bytes.Equal(f64bytes(m1.in), f64bytes(m2.in)) {
		t.Fatal("different seeds produced identical weights")
	}
}

func TestTrainEmptyCorpus(t *testing.T) {
	if _, err := Train(nil, smallConfig()); err != ErrEmptyCorpus {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
	// All sequences shorter than 2 tokens after pruning.
	if _, err := Train([][]string{{"only"}}, smallConfig()); err != ErrEmptyCorpus {
		t.Fatalf("err = %v, want ErrEmptyCorpus", err)
	}
}

func TestTrainMinCountPrunes(t *testing.T) {
	corpus := [][]string{
		{"common1", "common2", "common1", "common2", "rare"},
		{"common1", "common2", "common2", "common1"},
	}
	cfg := smallConfig()
	cfg.MinCount = 2
	m, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Vector("rare"); ok {
		t.Fatal("rare host should be pruned")
	}
	if _, ok := m.Vector("common1"); !ok {
		t.Fatal("common host missing")
	}
}

func TestVectorDimensions(t *testing.T) {
	rng := stats.NewRNG(3)
	corpus, ta, _ := topicCorpus(rng, 4, 30, 6)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	v, ok := m.Vector(ta[0])
	if !ok || len(v) != 16 {
		t.Fatalf("Vector dim = %d, want 16", len(v))
	}
	if m.Dim() != 16 {
		t.Fatalf("Dim() = %d", m.Dim())
	}
}

func TestMostSimilarExcludesSelfAndSorts(t *testing.T) {
	rng := stats.NewRNG(5)
	corpus, ta, _ := topicCorpus(rng, 8, 200, 10)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	nbs, err := m.MostSimilar(ta[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbs) != 5 {
		t.Fatalf("got %d neighbours", len(nbs))
	}
	for i, nb := range nbs {
		if nb.Host == ta[0] {
			t.Fatal("query host returned as its own neighbour")
		}
		if i > 0 && nbs[i-1].Cosine < nb.Cosine {
			t.Fatal("neighbours not sorted by decreasing cosine")
		}
	}
	if _, err := m.MostSimilar("nonexistent.example", 3); err == nil {
		t.Fatal("expected error for OOV host")
	}
}

func TestMostSimilarPrefersSameTopic(t *testing.T) {
	rng := stats.NewRNG(11)
	corpus, ta, _ := topicCorpus(rng, 10, 400, 12)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	nbs, err := m.MostSimilar(ta[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, nb := range nbs {
		if nb.Host[0] == 'a' {
			same++
		}
	}
	if same < 4 {
		t.Fatalf("only %d/5 nearest neighbours share the topic", same)
	}
}

func TestNearestToVectorEdgeCases(t *testing.T) {
	rng := stats.NewRNG(13)
	corpus, _, _ := topicCorpus(rng, 4, 30, 6)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NearestToVector(make([]float64, 16), 3, nil); got != nil {
		t.Fatal("zero query should return nil")
	}
	if got := m.NearestToVector([]float64{1}, 0, nil); got != nil {
		t.Fatal("k=0 should return nil")
	}
	// k larger than vocab returns everything.
	v := m.VectorByID(0)
	all := m.NearestToVector(v, 10000, nil)
	if len(all) != m.Vocab().Len() {
		t.Fatalf("len = %d, want %d", len(all), m.Vocab().Len())
	}
	// Top hit for a host's own vector is the host itself.
	if all[0].ID != 0 {
		t.Fatalf("self not top hit: %+v", all[0])
	}
}

func TestNearestToVectorMatchesBruteForce(t *testing.T) {
	rng := stats.NewRNG(17)
	corpus, _, _ := topicCorpus(rng, 8, 100, 8)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	q := m.VectorByID(3)
	got := m.NearestToVector(q, 4, nil)
	// Brute force reference.
	type pair struct {
		id  int
		cos float64
	}
	var ref []pair
	for id := 0; id < m.Vocab().Len(); id++ {
		ref = append(ref, pair{id, stats.Cosine(q, m.VectorByID(id))})
	}
	for i := 0; i < 4; i++ {
		best := i
		for j := i + 1; j < len(ref); j++ {
			if ref[j].cos > ref[best].cos {
				best = j
			}
		}
		ref[i], ref[best] = ref[best], ref[i]
		if math.Abs(got[i].Cosine-ref[i].cos) > 1e-9 {
			t.Fatalf("rank %d: heap %v vs brute %v", i, got[i].Cosine, ref[i].cos)
		}
	}
}

func TestTrainMultiWorkerStillLearns(t *testing.T) {
	rng := stats.NewRNG(19)
	corpus, ta, tb := topicCorpus(rng, 8, 300, 10)
	cfg := smallConfig()
	cfg.Workers = 4
	m, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	intra, _ := m.Similarity(ta[0], ta[1])
	inter, _ := m.Similarity(ta[0], tb[1])
	if intra <= inter {
		t.Fatalf("multi-worker model failed to learn: intra=%.3f inter=%.3f", intra, inter)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := stats.NewRNG(23)
	corpus, ta, _ := topicCorpus(rng, 5, 40, 6)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Dim() != m.Dim() || m2.Vocab().Len() != m.Vocab().Len() {
		t.Fatal("shape mismatch after round trip")
	}
	v1, _ := m.Vector(ta[0])
	v2, ok := m2.Vector(ta[0])
	if !ok {
		t.Fatal("host lost in round trip")
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("weights differ after round trip")
		}
	}
	if m2.Vocab().Total() != m.Vocab().Total() {
		t.Fatal("total count lost")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := stats.NewRNG(29)
	corpus, _, _ := topicCorpus(rng, 4, 30, 6)
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.bin"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Vocab().Len() != m.Vocab().Len() {
		t.Fatal("vocab size mismatch")
	}
	if _, err := LoadFile(path + ".missing"); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := TrainConfig{}.withDefaults()
	if cfg.Dim != 100 || cfg.Window != 2 || cfg.Negative != 5 || cfg.Epochs != 5 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
	if cfg.UnigramPower != 0.75 || cfg.Subsample != 1e-3 || cfg.MinCount != 5 {
		t.Fatalf("defaults wrong: %+v", cfg)
	}
}

func TestSubsamplingReducesFrequentHostUpdates(t *testing.T) {
	// A corpus dominated by one ubiquitous host: with subsampling on,
	// training should still succeed and keep all hosts in vocab.
	var corpus [][]string
	rng := stats.NewRNG(31)
	for s := 0; s < 100; s++ {
		seq := make([]string, 20)
		for i := range seq {
			if rng.Float64() < 0.8 {
				seq[i] = "portal.example"
			} else {
				seq[i] = []string{"x.example", "y.example", "z.example"}[rng.Intn(3)]
			}
		}
		corpus = append(corpus, seq)
	}
	cfg := smallConfig()
	cfg.Subsample = 1e-3
	m, err := Train(corpus, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Vector("portal.example"); !ok {
		t.Fatal("frequent host missing from vocab")
	}
}
