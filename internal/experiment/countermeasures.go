package experiment

import (
	"fmt"

	"hostprof/internal/sniffer"
)

// CountermeasureResult evaluates paper Section 7.4: how much profiling
// quality each user-side defence actually removes. Every scenario runs
// the identical observer pipeline (with IP fallback and DNS learning
// enabled) against differently-degraded traffic.
type CountermeasureResult struct {
	// Scenario name → session-topic match rate.
	MatchRate map[string]float64
	// Scenario name → fraction of visits observed only as IP tokens.
	Fallback map[string]float64
	// Order preserves scenario ordering for reports.
	Order []string
}

// countermeasureScenarios defines the Section 7.4 ladder, weakest to
// strongest defence.
var countermeasureScenarios = []struct {
	name string
	wire sniffer.WireConfig
	why  string
}{
	{
		name: "none",
		wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS, DNSLookupProb: 0.9},
		why:  "plain HTTPS plus clear DNS: SNI and queries both leak",
	},
	{
		name: "doh",
		wire: sniffer.WireConfig{Channel: sniffer.ChannelTLS},
		why:  "DNS-over-HTTPS hides queries, but SNI still names every site (paper: ad-blockers/DoH do not stop a network observer)",
	},
	{
		name: "ech+doh",
		wire: sniffer.WireConfig{Channel: sniffer.ChannelECH},
		why:  "encrypted ClientHello + DoH: only destination IPs remain, which still profile (paper §7.2)",
	},
	{
		name: "ech+doh+cdn",
		wire: sniffer.WireConfig{Channel: sniffer.ChannelECH, CoHostIPs: 4},
		why:  "co-hosting collapses destinations onto a few front IPs; IP profiling loses most discrimination",
	},
	{
		name: "tor-like",
		wire: sniffer.WireConfig{Channel: sniffer.ChannelECH, CoHostIPs: 1},
		why:  "everything tunnels to one relay address: the observer learns nothing (paper: only Tor-grade tools defeat the attack)",
	},
}

// RunCountermeasures evaluates every scenario against the setup's world.
func RunCountermeasures(s *Setup) (CountermeasureResult, error) {
	res := CountermeasureResult{
		MatchRate: make(map[string]float64),
		Fallback:  make(map[string]float64),
	}
	for i, sc := range countermeasureScenarios {
		wire := sc.wire
		wire.Seed = s.Config.Seed + 601 + uint64(i)
		ext, err := RunExtension(s, ExtConfig{
			Wire:       wire,
			ResolveIPs: wire.Channel == sniffer.ChannelECH,
			Seed:       s.Config.Seed + 701,
		})
		if err != nil {
			return res, fmt.Errorf("experiment: countermeasure %q: %w", sc.name, err)
		}
		res.MatchRate[sc.name] = ext.MatchRate()
		res.Fallback[sc.name] = ext.FallbackShare
		res.Order = append(res.Order, sc.name)
	}
	return res, nil
}

// Rows renders the countermeasure ladder.
func (r CountermeasureResult) Rows() []Row {
	measured := ""
	for i, n := range r.Order {
		if i > 0 {
			measured += "; "
		}
		measured += fmt.Sprintf("%s=%.2f", n, r.MatchRate[n])
	}
	// Shape: DoH alone must not help (SNI leaks anyway), and the ladder
	// must end far below where it starts.
	pass := len(r.Order) == 5 &&
		r.MatchRate["doh"] >= 0.8*r.MatchRate["none"] &&
		r.MatchRate["tor-like"] <= 0.5*r.MatchRate["none"]
	return []Row{{
		ID:        "CM",
		Name:      "Countermeasure ladder (§7.4)",
		Paper:     "ad-blockers and DNS privacy do not stop a network observer; only Tor-grade tunnelling does, at a usability cost",
		Measured:  "session-topic match rates: " + measured,
		Criterion: "DoH alone preserves >=80% of baseline profiling; tor-like drops below 50% of baseline",
		Pass:      pass,
	}}
}
