package stats

import (
	"math"
	"testing"
)

func TestRegIncBetaEdges(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Fatalf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Fatalf("I_1 = %v", got)
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a)
	for _, c := range []struct{ a, b, x float64 }{
		{2, 3, 0.4}, {0.5, 0.5, 0.3}, {5, 1, 0.9}, {10, 10, 0.5},
	} {
		l := RegIncBeta(c.a, c.b, c.x)
		r := 1 - RegIncBeta(c.b, c.a, 1-c.x)
		if !almostEq(l, r, 1e-10) {
			t.Errorf("symmetry broken at %+v: %v vs %v", c, l, r)
		}
	}
}

func TestRegIncBetaUniform(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.99} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-12) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
}

func TestStudentTKnownValues(t *testing.T) {
	// Reference values from scipy.stats.t.sf(t, df)*2 (two-tailed).
	cases := []struct {
		t, df, p float64
	}{
		{2.0, 10, 0.07338803},
		{1.0, 5, 0.36321746},
		{2.576, 1000, 0.01011343},
		{0.0, 7, 1.0},
	}
	for _, c := range cases {
		got := 2 * studentTSF(c.t, c.df)
		if got > 1 {
			got = 1
		}
		if !almostEq(got, c.p, 1e-4) {
			t.Errorf("p(t=%v, df=%v) = %v, want %v", c.t, c.df, got, c.p)
		}
	}
}

func TestPairedTTestIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	res, err := PairedTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if res.T != 0 || res.P != 1 {
		t.Fatalf("identical samples: T=%v P=%v", res.T, res.P)
	}
}

func TestPairedTTestKnown(t *testing.T) {
	// Diffs are {2,3,4,5,6}: mean 4, sample sd sqrt(2.5),
	// so t = 4 / (sqrt(2.5)/sqrt(5)) = 4*sqrt(2) = 5.65685..., df = 4.
	a := []float64{3, 4, 5, 6, 7}
	b := []float64{1, 1, 1, 1, 1}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(res.T, 4*math.Sqrt2, 1e-9) {
		t.Fatalf("T = %v, want %v", res.T, 4*math.Sqrt2)
	}
	// Cross-check P against direct numeric integration of the t density.
	want := 2 * tSFNumeric(res.T, res.DF)
	if !almostEq(res.P, want, 1e-6) {
		t.Fatalf("P = %v, numeric integration gives %v", res.P, want)
	}
	if !res.Significant(0.05) {
		t.Fatal("should be significant at 0.05")
	}
}

// tSFNumeric integrates the Student-t density from t to a large bound with
// Simpson's rule, as an implementation-independent reference.
func tSFNumeric(tv, df float64) float64 {
	lg1, _ := math.Lgamma((df + 1) / 2)
	lg2, _ := math.Lgamma(df / 2)
	c := math.Exp(lg1-lg2) / math.Sqrt(df*math.Pi)
	pdf := func(x float64) float64 {
		return c * math.Pow(1+x*x/df, -(df+1)/2)
	}
	const hi = 200.0
	const n = 200000
	h := (hi - tv) / n
	sum := pdf(tv) + pdf(hi)
	for i := 1; i < n; i++ {
		x := tv + float64(i)*h
		if i%2 == 1 {
			sum += 4 * pdf(x)
		} else {
			sum += 2 * pdf(x)
		}
	}
	return sum * h / 3
}

func TestPairedTTestNotSignificant(t *testing.T) {
	a := []float64{1.0, 2.0, 3.0, 4.0, 5.0}
	b := []float64{1.1, 1.9, 3.2, 3.9, 5.1}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant(0.05) {
		t.Fatalf("tiny noise should not be significant, p=%v", res.P)
	}
}

func TestPairedTTestErrors(t *testing.T) {
	if _, err := PairedTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := PairedTTest([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected too-few-pairs error")
	}
}

func TestPairedTTestConstantShift(t *testing.T) {
	a := []float64{2, 3, 4}
	b := []float64{1, 2, 3}
	res, err := PairedTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res.T, 1) || res.P != 0 {
		t.Fatalf("constant shift: T=%v P=%v, want +Inf/0", res.T, res.P)
	}
}

func TestPairedTTestSymmetric(t *testing.T) {
	a := []float64{5, 1, 4, 2, 8}
	b := []float64{2, 2, 2, 2, 2}
	r1, _ := PairedTTest(a, b)
	r2, _ := PairedTTest(b, a)
	if !almostEq(r1.T, -r2.T, 1e-12) || !almostEq(r1.P, r2.P, 1e-12) {
		t.Fatalf("t-test not antisymmetric: %+v vs %+v", r1, r2)
	}
}
