package sniffer

import (
	"testing"
)

// The hot observation path must not allocate per packet (gopacket's
// DecodingLayerParser discipline): one reused Packet, slices aliasing the
// input.
func TestDecodePacketZeroAlloc(t *testing.T) {
	pkt := tcpFrame([4]byte{10, 0, 1, 1}, [4]byte{93, 0, 0, 1}, 50000, 443, 1, 2, TCPFlagACK, []byte("data"))
	var p Packet
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodePacket(pkt, &p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("DecodePacket allocates %v per packet, want 0", allocs)
	}
}

func TestDecodePacketPayloadAliasesInput(t *testing.T) {
	payload := []byte("alias-me")
	pkt := tcpFrame([4]byte{10, 0, 1, 1}, [4]byte{93, 0, 0, 1}, 50000, 443, 1, 2, TCPFlagACK, payload)
	var p Packet
	if err := DecodePacket(pkt, &p); err != nil {
		t.Fatal(err)
	}
	// Mutating the input must show through the decoded payload: proof
	// of zero-copy.
	pkt[len(pkt)-1] ^= 0xff
	if p.Payload[len(p.Payload)-1] == 'e' {
		t.Fatal("payload was copied, not aliased")
	}
}

func TestObserverEvictsIdleFlows(t *testing.T) {
	obs := NewObserver(ObserverConfig{FlowTimeout: 10})
	// Open ~2048 abandoned flows at t=0 so the modulo-1024 eviction
	// trigger fires after the timeout has passed.
	mk := func(port uint16, ts int64) []byte {
		return tcpFrame([4]byte{10, 0, 0, 1}, [4]byte{93, 0, 0, 1}, port, 443, 1, 0, TCPFlagSYN, nil)
	}
	for i := 0; i < 2047; i++ {
		obs.ProcessPacket(mk(uint16(10000+i), 0), 0)
	}
	if obs.ActiveFlows() != 2047 {
		t.Fatalf("flows = %d", obs.ActiveFlows())
	}
	// A new flow far in the future triggers the sweep.
	obs.ProcessPacket(mk(60000, 1000), 1000)
	if obs.Stats().FlowsEvicted == 0 {
		t.Fatal("no flows evicted after timeout")
	}
	if obs.ActiveFlows() >= 2048 {
		t.Fatalf("flow table did not shrink: %d", obs.ActiveFlows())
	}
}
