package core

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"strings"
	"testing"
)

// ioTestModel trains a tiny deterministic model for serialization tests.
func ioTestModel(t *testing.T) *Model {
	t.Helper()
	corpus := [][]string{
		{"news.example", "sport.example", "news.example"},
		{"shop.example", "pay.example", "shop.example"},
		{"news.example", "sport.example", "pay.example"},
	}
	m, err := Train(corpus, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func encodeWire(t *testing.T, wire modelWire) []byte {
	t.Helper()
	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := gob.NewEncoder(bw).Encode(&wire); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadRejectsWireVersionMismatch: a future (or past) format version
// must be refused with a version error, not misinterpreted.
func TestLoadRejectsWireVersionMismatch(t *testing.T) {
	raw := encodeWire(t, modelWire{
		Version: modelWireVersion + 98,
		Dim:     4,
		Hosts:   []string{"a"},
		Counts:  []int64{1},
		In:      make([]float64, 4),
		Out:     make([]float64, 4),
	})
	_, err := Load(bytes.NewReader(raw))
	if err == nil {
		t.Fatal("Load accepted a wire version it does not understand")
	}
	if !strings.Contains(err.Error(), "unsupported model version") {
		t.Fatalf("want version error, got: %v", err)
	}
}

// TestLoadTruncatedStream: every strict prefix of a valid serialization
// must fail cleanly (no panic, no silently empty model).
func TestLoadTruncatedStream(t *testing.T) {
	m := ioTestModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, n := range []int{0, 1, len(full) / 4, len(full) / 2, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("Load accepted a %d/%d-byte truncated stream", n, len(full))
		}
	}
}

func TestLoadRejectsCorruptHeader(t *testing.T) {
	cases := []struct {
		name string
		wire modelWire
	}{
		{"zero dim", modelWire{Version: modelWireVersion, Dim: 0,
			Hosts: []string{"a"}, Counts: []int64{1}}},
		{"hosts/counts mismatch", modelWire{Version: modelWireVersion, Dim: 2,
			Hosts: []string{"a", "b"}, Counts: []int64{1},
			In: make([]float64, 4), Out: make([]float64, 4)}},
		{"short weights", modelWire{Version: modelWireVersion, Dim: 3,
			Hosts: []string{"a", "b"}, Counts: []int64{1, 1},
			In: make([]float64, 5), Out: make([]float64, 6)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Load(bytes.NewReader(encodeWire(t, tc.wire))); err == nil {
				t.Fatal("Load accepted a corrupt header")
			}
		})
	}
}
