package prof

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hostprof/internal/obs"
)

// --- Windowed quantiles -------------------------------------------------

// fineBuckets give the estimator enough resolution that interpolation
// error stays well under the assertion tolerances below.
var fineBuckets = func() []float64 {
	var b []float64
	for v := 0.01; v <= 10.001; v += 0.01 {
		b = append(b, v)
	}
	return b
}()

func TestQuantileUniform(t *testing.T) {
	w := NewWindowed(time.Minute, 4, fineBuckets)
	// Uniform on (0, 10]: quantile q should be ~10q.
	for i := 1; i <= 10000; i++ {
		w.Observe(float64(i) / 1000.0)
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.99} {
		got := w.Quantile(q)
		want := 10 * q
		if math.Abs(got-want) > 0.05 {
			t.Errorf("uniform q=%.2f: got %.4f want %.4f", q, got, want)
		}
	}
}

func TestQuantileBimodal(t *testing.T) {
	w := NewWindowed(time.Minute, 4, fineBuckets)
	// 90% fast (~50ms), 10% slow (~5s): p50 must sit in the fast mode,
	// p99 in the slow mode.
	for i := 0; i < 900; i++ {
		w.Observe(0.05)
	}
	for i := 0; i < 100; i++ {
		w.Observe(5.0)
	}
	if p50 := w.Quantile(0.5); p50 > 0.1 {
		t.Errorf("p50 = %.3f, want <= 0.1", p50)
	}
	if p99 := w.Quantile(0.99); p99 < 4.5 {
		t.Errorf("p99 = %.3f, want >= 4.5", p99)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	w := NewWindowed(time.Minute, 4, nil)
	if got := w.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("empty window: got %v, want NaN", got)
	}
	w.Observe(0.3)
	if got := w.Quantile(-0.1); !math.IsNaN(got) {
		t.Errorf("q<0: got %v, want NaN", got)
	}
	if got := w.Quantile(1.1); !math.IsNaN(got) {
		t.Errorf("q>1: got %v, want NaN", got)
	}
	var nilW *Windowed
	nilW.Observe(1) // must not panic
	if got := nilW.Quantile(0.5); !math.IsNaN(got) {
		t.Errorf("nil estimator: got %v, want NaN", got)
	}
	if c := nilW.Count(); c != 0 {
		t.Errorf("nil estimator count = %d", c)
	}
}

func TestWindowDecay(t *testing.T) {
	w := NewWindowed(time.Minute, 4, fineBuckets) // 15s slices
	clock := int64(0)
	w.setNow(func() int64 { return clock })
	for i := 0; i < 100; i++ {
		w.Observe(1.0)
	}
	if c := w.Count(); c != 100 {
		t.Fatalf("count = %d, want 100", c)
	}
	// Advance two slices: old samples still inside the window.
	clock += 2 * 15 * int64(time.Second)
	for i := 0; i < 100; i++ {
		w.Observe(9.0)
	}
	if c := w.Count(); c != 200 {
		t.Fatalf("mid-window count = %d, want 200", c)
	}
	if p50 := w.Quantile(0.5); p50 < 0.9 || p50 > 9.1 {
		t.Fatalf("mixed p50 = %.3f", p50)
	}
	// Advance past the window for the first batch only: the 1.0s
	// samples expire, the 9.0s samples remain.
	clock += 3 * 15 * int64(time.Second)
	if c := w.Count(); c != 100 {
		t.Fatalf("post-decay count = %d, want 100", c)
	}
	if p50 := w.Quantile(0.5); math.Abs(p50-9.0) > 0.1 {
		t.Fatalf("post-decay p50 = %.3f, want ~9.0", p50)
	}
	// A full window later everything is gone.
	clock += 5 * 15 * int64(time.Second)
	if c := w.Count(); c != 0 {
		t.Fatalf("expired count = %d, want 0", c)
	}
}

func TestQuantileMerge(t *testing.T) {
	// Quantiles over merged count vectors must match a single estimator
	// that saw the union of the observations.
	a := NewWindowed(time.Minute, 4, fineBuckets)
	b := NewWindowed(time.Minute, 4, fineBuckets)
	all := NewWindowed(time.Minute, 4, fineBuckets)
	for i := 1; i <= 1000; i++ {
		v := float64(i) / 200.0
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		all.Observe(v)
	}
	ca, na := a.Snapshot()
	cb, nb := b.Snapshot()
	merged := make([]int64, len(ca))
	for i := range ca {
		merged[i] = ca[i] + cb[i]
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := EstimateQuantile(a.Buckets(), merged, na+nb, q)
		want := all.Quantile(q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("merged q=%.2f: got %v want %v", q, got, want)
		}
	}
}

func TestCountAboveExactAtBound(t *testing.T) {
	w := NewWindowed(time.Minute, 4, []float64{0.1, 0.25, 0.5})
	for _, v := range []float64{0.05, 0.1, 0.25, 0.26, 0.7, 3} {
		w.Observe(v)
	}
	// Values equal to the bound are not "above" it.
	above, total := w.CountAbove(0.25)
	if total != 6 || above != 3 {
		t.Fatalf("CountAbove(0.25) = (%d, %d), want (3, 6)", above, total)
	}
}

// --- Ring ---------------------------------------------------------------

func TestRingCountEviction(t *testing.T) {
	r := NewRing(3, 1<<20)
	var ids []uint64
	for i := 0; i < 5; i++ {
		ids = append(ids, r.Add(Capture{Kind: "heap", Bytes: []byte{1, 2, 3}}))
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Get(ids[0]) != nil || r.Get(ids[1]) != nil {
		t.Fatal("oldest captures not evicted")
	}
	for _, id := range ids[2:] {
		if r.Get(id) == nil {
			t.Fatalf("capture %d missing", id)
		}
	}
}

func TestRingByteEviction(t *testing.T) {
	r := NewRing(100, 100)
	big := make([]byte, 40)
	id1 := r.Add(Capture{Kind: "heap", Bytes: big})
	id2 := r.Add(Capture{Kind: "heap", Bytes: big})
	id3 := r.Add(Capture{Kind: "heap", Bytes: big}) // 120 > 100: evict id1
	if r.Get(id1) != nil {
		t.Fatal("byte cap did not evict oldest")
	}
	if r.Get(id2) == nil || r.Get(id3) == nil {
		t.Fatal("newer captures missing")
	}
	if got := r.Bytes(); got != 80 {
		t.Fatalf("bytes = %d, want 80", got)
	}
	// An oversized capture is rejected outright, not allowed to flush
	// the ring.
	if id := r.Add(Capture{Kind: "cpu", Bytes: make([]byte, 200)}); id != 0 {
		t.Fatalf("oversized capture accepted with id %d", id)
	}
	if r.Len() != 2 {
		t.Fatalf("ring flushed by oversized capture: len=%d", r.Len())
	}
}

func TestRingByTrace(t *testing.T) {
	r := NewRing(10, 1<<20)
	r.Add(Capture{Kind: "goroutine", TraceID: "aaaa", Bytes: []byte{1}})
	r.Add(Capture{Kind: "mutex", TraceID: "aaaa", Bytes: []byte{2}})
	r.Add(Capture{Kind: "heap", Bytes: []byte{3}})
	got := r.ByTrace("aaaa")
	if len(got) != 2 || got[0].Kind != "goroutine" || got[1].Kind != "mutex" {
		t.Fatalf("ByTrace = %+v", got)
	}
	if r.ByTrace("bbbb") != nil {
		t.Fatal("ByTrace on unknown trace should be nil")
	}
	var nilR *Ring
	if nilR.Add(Capture{}) != 0 || nilR.Get(1) != nil || nilR.Len() != 0 {
		t.Fatal("nil ring not inert")
	}
}

// --- Profiler -----------------------------------------------------------

func TestCaptureNamedAndSlow(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Config{
		Interval:        -1, // no background loop
		TriggerCooldown: time.Hour,
		Metrics:         reg,
		MutexFraction:   -1,
		BlockRate:       -1,
	})
	defer p.Stop()
	id := p.CaptureNamed("heap", "interval", "")
	if id == 0 {
		t.Fatal("heap capture failed")
	}
	c := p.Ring().Get(id)
	if c == nil || len(c.Bytes) == 0 {
		t.Fatal("capture empty")
	}
	// pprof WriteTo(debug=0) output is gzip: magic bytes 1f 8b.
	if c.Bytes[0] != 0x1f || c.Bytes[1] != 0x8b {
		t.Fatalf("capture is not gzip: % x", c.Bytes[:2])
	}
	if p.CaptureNamed("no-such-profile", "interval", "") != 0 {
		t.Fatal("unknown profile kind should fail")
	}

	ids := p.CaptureSlow("deadbeef")
	if len(ids) != 2 {
		t.Fatalf("CaptureSlow ids = %v, want 2 captures", ids)
	}
	byTrace := p.Ring().ByTrace("deadbeef")
	if len(byTrace) != 2 {
		t.Fatalf("trace-tagged captures = %d, want 2", len(byTrace))
	}
	kinds := map[string]bool{}
	for _, c := range byTrace {
		kinds[c.Kind] = true
	}
	if !kinds["goroutine"] || !kinds["mutex"] {
		t.Fatalf("trigger kinds = %v", kinds)
	}
	// Inside the cooldown the trigger is suppressed.
	if got := p.CaptureSlow("cafe"); got != nil {
		t.Fatalf("cooldown not enforced: %v", got)
	}
	if v := reg.Counter("hostprof_prof_triggers_suppressed_total").Value(); v != 1 {
		t.Fatalf("suppressed counter = %d", v)
	}
}

func TestProfilerBackgroundLoopAndStop(t *testing.T) {
	p := New(Config{
		Interval:      50 * time.Millisecond,
		CPUDuration:   10 * time.Millisecond,
		MutexFraction: -1,
		BlockRate:     -1,
	})
	deadline := time.After(5 * time.Second)
	for p.Ring().Len() < 4 {
		select {
		case <-deadline:
			t.Fatalf("background loop captured only %d profiles", p.Ring().Len())
		case <-time.After(10 * time.Millisecond):
		}
	}
	p.Stop()
	p.Stop() // idempotent
	n := p.Ring().Len()
	time.Sleep(80 * time.Millisecond)
	if p.Ring().Len() != n {
		t.Fatal("loop still capturing after Stop")
	}
}

func TestNilProfilerZeroAlloc(t *testing.T) {
	// The disabled path — nil profiler, nil SLO — must not allocate on
	// the request path, matching the tracer's contract.
	var p *Profiler
	var s *SLO
	var l *SlowLog
	allocs := testing.AllocsPerRun(1000, func() {
		if ids := p.CaptureSlow("id"); ids != nil {
			t.Fatal("nil profiler captured")
		}
		s.Observe(0.001)
		l.Add(SlowEntry{})
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

// --- SLO tracker --------------------------------------------------------

func TestSLOBurnRate(t *testing.T) {
	reg := obs.NewRegistry()
	tr := NewSLOTracker(time.Minute, reg)
	s := tr.Register("report", 100*time.Millisecond)
	// 95 fast, 5 slow → breach ratio 5%, burn rate 5 against the 1%
	// budget.
	for i := 0; i < 95; i++ {
		s.Observe(0.010)
	}
	for i := 0; i < 5; i++ {
		s.Observe(0.500)
	}
	st := s.Status()
	if st.WindowRequests != 100 {
		t.Fatalf("window requests = %d", st.WindowRequests)
	}
	if math.Abs(st.BreachRatio-0.05) > 1e-9 {
		t.Fatalf("breach ratio = %v", st.BreachRatio)
	}
	if math.Abs(st.BurnRate-5.0) > 1e-9 {
		t.Fatalf("burn rate = %v", st.BurnRate)
	}
	if st.P50 > 0.1 || st.P99 < 0.1 {
		t.Fatalf("quantiles p50=%v p99=%v", st.P50, st.P99)
	}
	// The gauges exist and agree.
	var buf strings.Builder
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `hostprof_slo_burn_rate{endpoint="report"} 5`) {
		t.Fatalf("burn-rate gauge missing:\n%s", out)
	}
	if !strings.Contains(out, `hostprof_slo_target_seconds{endpoint="report"} 0.1`) {
		t.Fatalf("target gauge missing:\n%s", out)
	}
}

func TestSLOExactBoundarySemantics(t *testing.T) {
	tr := NewSLOTracker(time.Minute, nil)
	s := tr.Register("report", 250*time.Millisecond)
	s.Observe(0.250) // exactly on target: within SLO
	s.Observe(0.251) // breach
	st := s.Status()
	if math.Abs(st.BreachRatio-0.5) > 1e-9 {
		t.Fatalf("breach ratio = %v, want 0.5 (exact-boundary sample must not breach)", st.BreachRatio)
	}
}

func TestSLOTrackerNilAndStatus(t *testing.T) {
	var tr *SLOTracker
	if tr.Register("x", time.Second) != nil {
		t.Fatal("nil tracker registered an SLO")
	}
	if tr.Status() != nil || tr.Get("x") != nil {
		t.Fatal("nil tracker not inert")
	}
	real := NewSLOTracker(0, nil)
	if real.Register("b", 0) != nil {
		t.Fatal("non-positive target should not register")
	}
	real.Register("b", time.Second)
	real.Register("a", time.Second)
	if same := real.Register("a", 2*time.Second); same != real.Get("a") {
		t.Fatal("re-register must return the existing SLO")
	}
	st := real.Status()
	if len(st) != 2 || st[0].Endpoint != "a" || st[1].Endpoint != "b" {
		t.Fatalf("status order = %+v", st)
	}
	var nilSLO *SLO
	nilSLO.Observe(1)
	if got := nilSLO.Status(); got.WindowRequests != 0 {
		t.Fatal("nil SLO not inert")
	}
}

// --- HTTP: profile index + statusz -------------------------------------

func TestProfHandler(t *testing.T) {
	p := New(Config{Interval: -1, MutexFraction: -1, BlockRate: -1, TriggerCooldown: time.Hour})
	id := p.CaptureNamed("heap", "interval", "")
	ids := p.CaptureSlow("feedface")
	if id == 0 || len(ids) != 2 {
		t.Fatalf("capture setup failed: id=%d ids=%v", id, ids)
	}
	h := p.Handler()

	get := func(url string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		return rr
	}

	// Download: raw gzip bytes with an attachment header.
	rr := get(fmt.Sprintf("/debug/prof/%d", id))
	if rr.Code != 200 {
		t.Fatalf("download code = %d", rr.Code)
	}
	body, _ := io.ReadAll(rr.Body)
	if len(body) < 2 || body[0] != 0x1f || body[1] != 0x8b {
		t.Fatal("download is not the pprof gzip")
	}
	if cd := rr.Header().Get("Content-Disposition"); !strings.Contains(cd, "heap") {
		t.Fatalf("content-disposition = %q", cd)
	}

	// JSON index.
	rr = get("/debug/prof/?format=json")
	var idx struct {
		Captures []Capture `json:"captures"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Captures) != 3 {
		t.Fatalf("index lists %d captures, want 3", len(idx.Captures))
	}

	// Trace-filtered index: only the trigger captures.
	rr = get("/debug/prof/?trace=feedface&format=json")
	idx.Captures = nil
	if err := json.Unmarshal(rr.Body.Bytes(), &idx); err != nil {
		t.Fatal(err)
	}
	if len(idx.Captures) != 2 {
		t.Fatalf("trace filter lists %d captures, want 2", len(idx.Captures))
	}

	// HTML index links the trace.
	rr = get("/debug/prof/")
	if !strings.Contains(rr.Body.String(), "/debug/traces?trace=feedface") {
		t.Fatal("HTML index does not link the trace")
	}

	// Errors.
	if got := get("/debug/prof/notanumber").Code; got != 400 {
		t.Fatalf("bad id code = %d", got)
	}
	if got := get("/debug/prof/99999").Code; got != 404 {
		t.Fatalf("missing id code = %d", got)
	}
	var nilP *Profiler
	rr = httptest.NewRecorder()
	nilP.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/prof/", nil))
	if rr.Code != 404 {
		t.Fatalf("nil profiler handler code = %d", rr.Code)
	}
}

func TestStatuszRendering(t *testing.T) {
	s := NewStatusz()
	s.Section("slo", func() any {
		return []SLOStatus{{Endpoint: "report", TargetSeconds: 0.25, BurnRate: 2.5}}
	})
	s.Section("store", func() any { return map[string]any{"degraded": false} })
	// Replacing a section keeps its position and does not duplicate.
	s.Section("store", func() any { return map[string]any{"degraded": true} })

	rr := httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/statusz?format=json", nil))
	var page map[string]json.RawMessage
	if err := json.Unmarshal(rr.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page) != 3 {
		t.Fatalf("sections = %d, want 3 (build, slo, store)", len(page))
	}
	if _, ok := page["build"]; !ok {
		t.Fatal("build section missing")
	}
	var store map[string]bool
	if err := json.Unmarshal(page["store"], &store); err != nil {
		t.Fatal(err)
	}
	if !store["degraded"] {
		t.Fatal("section replacement did not take")
	}

	rr = httptest.NewRecorder()
	s.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/statusz", nil))
	html := rr.Body.String()
	for _, want := range []string{"<h2>build</h2>", "<h2>slo</h2>", "<h2>store</h2>", "go_version", "burn_rate"} {
		if !strings.Contains(html, want) {
			t.Fatalf("HTML statusz missing %q:\n%s", want, html)
		}
	}
	if idx := strings.Index(html, "<h2>slo</h2>"); idx > strings.Index(html, "<h2>store</h2>") {
		t.Fatal("sections out of registration order")
	}

	var nilS *Statusz
	nilS.Section("x", func() any { return nil })
	rr = httptest.NewRecorder()
	nilS.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/statusz", nil))
	if rr.Code != 404 {
		t.Fatalf("nil statusz code = %d", rr.Code)
	}
}

func TestSlowLog(t *testing.T) {
	l := NewSlowLog(2)
	l.Add(SlowEntry{Endpoint: "a", Seconds: 1})
	l.Add(SlowEntry{Endpoint: "b", Seconds: 2})
	l.Add(SlowEntry{Endpoint: "c", Seconds: 3})
	got := l.Snapshot()
	if len(got) != 2 || got[0].Endpoint != "c" || got[1].Endpoint != "b" {
		t.Fatalf("slow log = %+v", got)
	}
	if got[0].UnixNano == 0 {
		t.Fatal("timestamp not stamped")
	}
}
