// Keyspace migration: the machinery that makes cluster resize a
// zero-loss operation under live traffic.
//
// A resize (POST /v1/cluster/resize, or Gateway.Resize) diffs the old
// and new rings into moved key ranges (DiffRings) and drives each range
// through a small state machine:
//
//	pending → copying → draining → done (cutover)
//	                  ↘ aborted (rolled back to the old owner)
//
// The copy protocol is exact, not approximate. Each range carries a
// write gate (an RWMutex): report traffic for the range holds it shared
// across the whole source(+target) round trip, and the supervisor takes
// it exclusively to freeze the range — at which point no write is in
// flight. Under that freeze the supervisor resets the target's copy,
// enumerates the range's users and captures their source record counts
// C0; from then on every accepted report is double-written (source
// first — the ack — then imported to the target). The copy loop streams
// exactly records [0, C0) per user, chunked and resumable by offset
// watermark, so copied history and double-written live traffic
// partition perfectly: nothing is lost and nothing lands twice. Cutover
// takes the gate again and compares per-user record counts and
// order-insensitive content digests (store.VisitHash sums) between
// source and target; only an exact match flips the range to done, after
// which routing serves the new owner. Any mismatch — including a target
// crash that resurrected a reset — is repaired by reset + recopy.
//
// Failure semantics: a dying source aborts only its own ranges (its
// keyspace was shed anyway); a dying target rolls its ranges back to
// the old owner, which never stopped being authoritative; a failed
// migration stays installed — done ranges keep routing to their new
// owner, everything else to the old — and re-POSTing the same resize
// resumes it idempotently: done ranges are kept, the rest are reset and
// recopied. Source data is purged only after every range has cut over.
//
// The one unprotected window: the gateway process itself dying
// mid-migration loses the in-memory range states, and post-cutover
// writes that reached only the target cannot be recovered by restarting
// the resize from scratch. Persisting migration state is future work;
// until then, resize from a single gateway and let it finish.
package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/server"
)

// rangeState is one moved range's position in the migration lifecycle.
type rangeState int32

const (
	rangePending  rangeState = iota // not started: route to From, no double-write
	rangeCopying                    // freeze captured, bulk copy in progress: double-write
	rangeDraining                   // copy finished, verifying: double-write continues
	rangeDone                       // cutover: route to To
	rangeAborted                    // rolled back: route to From
)

func (s rangeState) String() string {
	switch s {
	case rangeCopying:
		return "copying"
	case rangeDraining:
		return "draining"
	case rangeDone:
		return "done"
	case rangeAborted:
		return "aborted"
	default:
		return "pending"
	}
}

// migRange is one moved keyspace arc plus its migration bookkeeping.
type migRange struct {
	MovedRange

	// gate is the range's write barrier. Forwarders hold it shared for
	// the duration of a write (source forward + target import); the
	// supervisor holds it exclusively to freeze the range for count
	// capture and for the cutover verify — guaranteeing no write is in
	// flight at either decision point.
	gate  sync.RWMutex
	state atomic.Int32
	// dirty flips when a double-write to the target fails after the
	// source already acked: the target is now behind, and only a reset +
	// recopy makes it exact again. Read at verify under the gate.
	dirty atomic.Bool

	// Everything below is owned by the supervisor's single range worker;
	// Status reads it under the migration mutex via statusLocked.
	users    []int       // range's users, re-enumerated at each freeze
	frozen   map[int]int // per-user source record count C0 at freeze
	copied   map[int]int // per-user copy watermark into [0, C0)
	attempts int
	lastErr  string
}

func (r *migRange) st() rangeState { return rangeState(r.state.Load()) }

// Migration is one supervised resize operation.
type Migration struct {
	g       *Gateway
	oldRing *Ring
	newRing *Ring
	from    []string // old membership, sorted
	to      []string // new membership, sorted
	joiners []string // in to, not in from
	leavers []string // in from, not in to

	ranges []*migRange // non-wrapping, sorted by Lo ascending
	wrap   *migRange   // the at-most-one wrapping range, or nil

	mu       sync.Mutex
	phase    string // planning, copying, cutover, done, failed
	errMsg   string
	started  time.Time
	finished time.Time
	users    int // users enumerated at plan time (status only)
	resumes  int
	traceID  string
	done     chan struct{}

	records atomic.Int64 // visit records copied
}

// terminalPhase reports whether a phase string is an end state.
func terminalPhase(p string) bool { return p == "done" || p == "failed" }

// allRanges returns every range including the wrapping one.
func (m *Migration) allRanges() []*migRange {
	out := m.ranges
	if m.wrap != nil {
		out = append(append([]*migRange(nil), m.ranges...), m.wrap)
	}
	return out
}

// rangeFor returns the moved range containing hash h, or nil when h is
// not migrating. Binary search over the Lo-sorted non-wrapping ranges
// plus one check of the wrapping range.
func (m *Migration) rangeFor(h uint64) *migRange {
	if m.wrap != nil && m.wrap.Contains(h) {
		return m.wrap
	}
	i := sort.Search(len(m.ranges), func(i int) bool { return m.ranges[i].Hi >= h })
	if i < len(m.ranges) && m.ranges[i].Contains(h) {
		return m.ranges[i]
	}
	return nil
}

// Done returns a channel closed when the current run reaches a terminal
// phase (done or failed).
func (m *Migration) Done() <-chan struct{} {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.done
}

// Wait blocks until the current run terminates or ctx expires, then
// returns nil for done and an error for failed.
func (m *Migration) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-m.Done():
	}
	st := m.Status()
	if st.State != "done" {
		return fmt.Errorf("cluster: migration %s: %s", st.State, st.Error)
	}
	return nil
}

func (m *Migration) setPhase(p string) {
	m.mu.Lock()
	m.phase = p
	m.mu.Unlock()
	m.phaseEvent(p)
}

// phaseEvent records one migration state-machine transition on the
// cluster timeline, with the range counts an operator needs to judge
// progress. Called from the supervisor goroutine only.
func (m *Migration) phaseEvent(p string) {
	total, done, aborted := 0, 0, 0
	for _, r := range m.allRanges() {
		total++
		switch r.st() {
		case rangeDone:
			done++
		case rangeAborted:
			aborted++
		}
	}
	m.g.event(EventMigration, "", "migration "+p,
		"phase", p,
		"ranges", strconv.Itoa(total),
		"ranges_done", strconv.Itoa(done),
		"ranges_aborted", strconv.Itoa(aborted),
		"records_copied", strconv.FormatInt(m.records.Load(), 10))
}

// RangeStatus is one range's externally visible state.
type RangeStatus struct {
	Lo       string `json:"lo"` // hex ring positions
	Hi       string `json:"hi"`
	From     string `json:"from"`
	To       string `json:"to"`
	State    string `json:"state"`
	Users    int    `json:"users"`
	Attempts int    `json:"attempts,omitempty"`
	LastErr  string `json:"last_error,omitempty"`
}

// MigrationStatus is the /v1/cluster (and /readyz detail) view of a
// migration.
type MigrationStatus struct {
	State         string        `json:"state"`
	From          []string      `json:"from"`
	To            []string      `json:"to"`
	StartedAt     time.Time     `json:"started_at"`
	FinishedAt    time.Time     `json:"finished_at,omitempty"`
	Ranges        int           `json:"ranges"`
	RangesDone    int           `json:"ranges_done"`
	RangesAborted int           `json:"ranges_aborted"`
	Users         int           `json:"users"`
	RecordsCopied int64         `json:"records_copied"`
	Resumes       int           `json:"resumes,omitempty"`
	TraceID       string        `json:"trace_id,omitempty"`
	Error         string        `json:"error,omitempty"`
	RangeDetail   []RangeStatus `json:"range_detail,omitempty"`
}

// Status snapshots the migration. The overall state refines the
// supervisor's coarse phase with per-range progress: "copying" becomes
// "draining" once every active range has finished its bulk copy and is
// verifying under double-write.
func (m *Migration) Status() MigrationStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := MigrationStatus{
		State:         m.phase,
		From:          m.from,
		To:            m.to,
		StartedAt:     m.started,
		FinishedAt:    m.finished,
		Users:         m.users,
		RecordsCopied: m.records.Load(),
		Resumes:       m.resumes,
		TraceID:       m.traceID,
		Error:         m.errMsg,
	}
	copying, draining := 0, 0
	for _, r := range m.allRanges() {
		st.Ranges++
		rs := r.st()
		switch rs {
		case rangeDone:
			st.RangesDone++
		case rangeAborted:
			st.RangesAborted++
		case rangeCopying:
			copying++
		case rangeDraining:
			draining++
		}
		st.RangeDetail = append(st.RangeDetail, RangeStatus{
			Lo:       strconv.FormatUint(r.Lo, 16),
			Hi:       strconv.FormatUint(r.Hi, 16),
			From:     r.From,
			To:       r.To,
			State:    rs.String(),
			Users:    len(r.users),
			Attempts: r.attempts,
			LastErr:  r.lastErr,
		})
	}
	if st.State == "copying" && copying == 0 && draining > 0 {
		st.State = "draining"
	}
	return st
}

// migrationPhaseOrdinal maps states onto the
// hostprof_gateway_migration_state gauge: 0 idle, 1 planning, 2
// copying, 3 draining, 4 cutover, 5 done, 6 failed.
func migrationPhaseOrdinal(state string) float64 {
	switch state {
	case "planning":
		return 1
	case "copying":
		return 2
	case "draining":
		return 3
	case "cutover":
		return 4
	case "done":
		return 5
	case "failed":
		return 6
	default:
		return 0
	}
}

// normalizeBackends mirrors the CLI's backend normalization loosely:
// scheme defaulted to http, trailing slash trimmed, entries validated
// as URLs.
func normalizeBackends(in []string) ([]string, error) {
	out := make([]string, 0, len(in))
	for _, b := range in {
		s := b
		if s == "" {
			return nil, errors.New("cluster: empty backend URL")
		}
		if strings.ContainsAny(s, " \t\r\n") {
			// url.Parse tolerates spaces in hostnames; a dial never will.
			return nil, fmt.Errorf("cluster: bad backend URL %q", b)
		}
		if u, err := url.Parse(s); err != nil || u.Scheme == "" {
			s = "http://" + s
		}
		u, err := url.Parse(s)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("cluster: bad backend URL %q", b)
		}
		for len(s) > 0 && s[len(s)-1] == '/' {
			s = s[:len(s)-1]
		}
		out = append(out, s)
	}
	return out, nil
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]string(nil), a...)
	bs := append([]string(nil), b...)
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// ErrResizeConflict is returned when a resize targets a different
// membership while another migration is installed (running or failed).
var ErrResizeConflict = errors.New("cluster: another migration is installed; resume it (re-POST its backends) or wait for it to finish")

// Resize starts, joins or resumes a keyspace migration to the given
// membership. Returns the migration (nil when the resize is a no-op)
// and whether this call started or resumed a run (false = joined one
// already in flight). The heavy work happens in a supervised background
// goroutine; poll /v1/cluster, watch the
// hostprof_gateway_migration_state gauge, or Wait on the returned
// Migration.
func (g *Gateway) Resize(ctx context.Context, backends []string) (*Migration, bool, error) {
	backends, err := normalizeBackends(backends)
	if err != nil {
		return nil, false, err
	}
	newRing, err := NewRing(backends, g.cfg.VirtualNodes)
	if err != nil {
		return nil, false, err
	}

	g.resizeMu.Lock()
	defer g.resizeMu.Unlock()

	if existing := g.migration.Load(); existing != nil {
		st := existing.Status()
		if !sameMembers(existing.to, backends) {
			return nil, false, ErrResizeConflict
		}
		if !terminalPhase(st.State) {
			return existing, false, nil // join the run in flight
		}
		// Failed run to the same membership: resume it. Done runs are
		// never left installed.
		existing.prepareResume()
		g.met.migResumes.Inc()
		g.spawnMigration(ctx, existing)
		return existing, true, nil
	}

	oldRing := g.Ring()
	if oldRing.Equal(backends) {
		return nil, false, nil
	}
	moved := DiffRings(oldRing, newRing)
	if len(moved) == 0 {
		// Membership changed but no keyspace moved (cannot happen with
		// distinct vnode sets, but handle it): plain ring swap.
		return nil, false, g.SetBackends(backends)
	}

	m := &Migration{
		g:       g,
		oldRing: oldRing,
		newRing: newRing,
		from:    oldRing.Nodes(),
		to:      newRing.Nodes(),
		phase:   "planning",
		started: time.Now(),
		done:    make(chan struct{}),
	}
	for _, n := range m.to {
		if !contains(m.from, n) {
			m.joiners = append(m.joiners, n)
		}
	}
	for _, n := range m.from {
		if !contains(m.to, n) {
			m.leavers = append(m.leavers, n)
		}
	}
	for _, mr := range moved {
		r := &migRange{MovedRange: mr}
		if mr.Lo >= mr.Hi {
			m.wrap = r
			continue
		}
		m.ranges = append(m.ranges, r)
	}
	sort.Slice(m.ranges, func(i, j int) bool { return m.ranges[i].Lo < m.ranges[j].Lo })

	// Install behind the barrier: after Unlock, every in-flight write
	// that predates the migration has drained, so no un-gated write can
	// slip between a range freeze and its count capture.
	g.migration.Store(m)
	g.migBarrier.Lock()
	g.migBarrier.Unlock() //nolint:staticcheck // empty critical section IS the barrier
	g.met.migStarts.Inc()
	g.log.Info("cluster resize started",
		slog.Int("from", len(m.from)), slog.Int("to", len(m.to)),
		slog.Int("moved_ranges", len(moved)),
		slog.Any("joiners", m.joiners), slog.Any("leavers", m.leavers))
	g.spawnMigration(ctx, m)
	return m, true, nil
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// prepareResume resets every non-done range for a fresh attempt. Done
// ranges keep their cutover — their source copies are stale by now.
func (m *Migration) prepareResume() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, r := range m.allRanges() {
		if r.st() == rangeDone {
			continue
		}
		r.state.Store(int32(rangePending))
		r.dirty.Store(false)
		r.attempts = 0
		r.lastErr = ""
		r.frozen, r.copied = nil, nil
	}
	m.phase = "planning"
	m.errMsg = ""
	m.finished = time.Time{}
	m.resumes++
	m.done = make(chan struct{})
}

// spawnMigration runs the supervisor in the background, detached from
// the request's cancellation but not from its trace, and tied to the
// gateway's lifecycle: Close cancels and waits for it.
func (g *Gateway) spawnMigration(ctx context.Context, m *Migration) {
	runCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	done := m.Done()
	g.wg.Add(2)
	go func() {
		defer g.wg.Done()
		select {
		case <-g.stop:
			cancel()
		case <-done:
			cancel()
		}
	}()
	go func() {
		defer g.wg.Done()
		m.run(runCtx)
	}()
}

// run drives one migration attempt end to end: plan, copy every range,
// then either finish (swap ring, purge sources) or record the failure
// and stay installed for resume.
func (m *Migration) run(ctx context.Context) {
	g := m.g
	defer func() {
		m.mu.Lock()
		done := m.done
		m.mu.Unlock()
		close(done)
	}()

	pctx, span := g.tr.StartSpan(ctx, "gw.migrate.plan")
	if span.Recording() {
		m.mu.Lock()
		m.traceID = span.TraceIDString()
		m.mu.Unlock()
	}
	err := m.plan(pctx)
	span.Error(err)
	span.End()
	if err != nil {
		m.fail(err)
		return
	}

	m.setPhase("copying")
	cctx, cspan := g.tr.StartSpan(ctx, "gw.migrate.copy")
	workers := g.cfg.MigrationWorkers
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, r := range m.allRanges() {
		if r.st() == rangeDone { // kept from a resumed run
			continue
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(r *migRange) {
			defer func() { <-sem; wg.Done() }()
			m.runRange(cctx, r)
		}(r)
	}
	wg.Wait()
	cspan.SetAttr("records", strconv.FormatInt(m.records.Load(), 10))
	cspan.End()

	aborted := 0
	for _, r := range m.allRanges() {
		if r.st() != rangeDone {
			aborted++
		}
	}
	if aborted > 0 {
		m.fail(fmt.Errorf("%d of %d ranges aborted", aborted, len(m.allRanges())))
		return
	}

	fctx, fspan := g.tr.StartSpan(ctx, "gw.migrate.cutover")
	m.finish(fctx)
	fspan.End()
}

// plan probes the migration's targets, ships the cluster's model to
// joiners (a joining shard must profile moved users immediately, not
// after the next retrain), and enumerates how many users move.
func (m *Migration) plan(ctx context.Context) error {
	g := m.g
	m.setPhase("planning")

	// Joining shards become routable state before any traffic reaches
	// them.
	g.mu.Lock()
	for _, j := range m.joiners {
		if g.shards[j] == nil {
			g.shards[j] = &shardState{name: j}
			g.wireShardGauges(j)
		}
	}
	g.mu.Unlock()

	targets := map[string]bool{}
	sources := map[string]bool{}
	for _, r := range m.allRanges() {
		targets[r.To] = true
		sources[r.From] = true
	}
	var wg sync.WaitGroup
	for t := range targets {
		wg.Add(1)
		go func(t string) {
			defer wg.Done()
			g.probeShard(ctx, t)
		}(t)
	}
	wg.Wait()
	for t := range targets {
		if !g.shardSnapshot(t).alive {
			return fmt.Errorf("cluster: resize target %s is not alive", t)
		}
	}
	for s := range sources {
		if !g.shardSnapshot(s).alive {
			return fmt.Errorf("cluster: resize source %s is not alive", s)
		}
	}

	// Model distribution to joiners: reuse the anti-entropy source
	// order (first alive old member serving a model).
	var modelSrc, want string
	g.mu.Lock()
	for _, name := range m.from {
		if s := g.shards[name]; s != nil && s.alive && s.modelVersion != "" {
			modelSrc, want = name, s.modelVersion
			break
		}
	}
	g.mu.Unlock()
	if modelSrc != "" {
		for _, j := range m.joiners {
			if g.shardSnapshot(j).modelVersion == want {
				continue
			}
			version, data, err := g.fetchModel(ctx, modelSrc)
			if err != nil {
				return fmt.Errorf("cluster: fetching model for joiner: %w", err)
			}
			if err := g.pushModel(ctx, j, version, data); err != nil {
				return fmt.Errorf("cluster: seeding model on %s: %w", j, err)
			}
			g.met.modelPushes.Inc()
			g.probeShard(ctx, j)
		}
	}

	// User enumeration (status only — each freeze re-enumerates): count
	// moving users per source.
	total := 0
	for s := range sources {
		users, err := m.exportUsers(ctx, s)
		if err != nil {
			return err
		}
		for _, u := range users {
			if m.rangeFor(userHash(u)) != nil {
				total++
			}
		}
	}
	m.mu.Lock()
	m.users = total
	m.mu.Unlock()
	return nil
}

// runRange drives one range to done or aborted: up to
// cfg.MigrationAttempts rounds of freeze → copy → verify, aborting
// early when the source or target dies.
func (m *Migration) runRange(ctx context.Context, r *migRange) {
	g := m.g
	for {
		m.mu.Lock()
		r.attempts++
		attempt := r.attempts
		m.mu.Unlock()
		if attempt > g.cfg.MigrationAttempts {
			m.abortRange(r, fmt.Errorf("cluster: %d attempts exhausted", g.cfg.MigrationAttempts))
			return
		}
		if ctx.Err() != nil {
			m.abortRange(r, ctx.Err())
			return
		}
		if err := m.checkEndpoints(r); err != nil {
			m.abortRange(r, err)
			return
		}

		err := m.freezeRange(ctx, r)
		if err == nil {
			err = m.copyRange(ctx, r)
		}
		if err == nil {
			r.state.Store(int32(rangeDraining))
			var ok bool
			ok, err = m.verifyRange(ctx, r)
			if ok {
				g.met.migRangesDone.Inc()
				return
			}
		}
		if err != nil {
			m.mu.Lock()
			r.lastErr = err.Error()
			m.mu.Unlock()
			if eerr := m.checkEndpoints(r); eerr != nil {
				m.abortRange(r, eerr)
				return
			}
		}
		// Mismatch or transient error with both endpoints alive: reset
		// and recopy on the next round.
		r.state.Store(int32(rangeCopying))
	}
}

// checkEndpoints reports which endpoint of a range died, if any.
func (m *Migration) checkEndpoints(r *migRange) error {
	if !m.g.shardSnapshot(r.From).alive {
		return fmt.Errorf("cluster: source %s died", r.From)
	}
	if !m.g.shardSnapshot(r.To).alive {
		return fmt.Errorf("cluster: target %s died", r.To)
	}
	return nil
}

// abortRange rolls a range back to its old owner.
func (m *Migration) abortRange(r *migRange, err error) {
	r.state.Store(int32(rangeAborted))
	m.mu.Lock()
	r.lastErr = err.Error()
	m.mu.Unlock()
	m.g.met.migRangesAborted.Inc()
	m.g.event(EventMigrationRange, r.To, "migration range aborted, rolled back to old owner",
		"from", r.From, "to", r.To, "err", err.Error())
	m.g.log.Warn("migration range aborted",
		slog.String("from", r.From), slog.String("to", r.To),
		slog.String("err", err.Error()))
}

// freezeRange is the exactness pivot: under the range's exclusive write
// gate — no report in flight — it re-enumerates the range's users,
// resets the target's copy of them, and captures each user's source
// record count C0. Setting state to copying before releasing the gate
// means every subsequent write is double-written AND lands at source
// offset >= C0: the bulk copy of [0, C0) and the double-written tail
// partition the user's history exactly.
func (m *Migration) freezeRange(ctx context.Context, r *migRange) error {
	r.gate.Lock()
	defer r.gate.Unlock()
	users, err := m.exportUsersInRange(ctx, r)
	if err != nil {
		return err
	}
	if err := m.importReset(ctx, r.To, users); err != nil {
		return err
	}
	frozen, err := m.fetchDigests(ctx, r.From, users)
	if err != nil {
		return err
	}
	counts := make(map[int]int, len(frozen))
	for u, d := range frozen {
		counts[u] = d.count
	}
	m.mu.Lock()
	r.users = users
	r.frozen = counts
	r.copied = make(map[int]int, len(users))
	m.mu.Unlock()
	r.dirty.Store(false)
	r.state.Store(int32(rangeCopying))
	return nil
}

// copyRange streams each frozen user's records [watermark, C0) from
// source to target in cfg.MigrationChunk-sized chunks. Interruptions
// resume from the per-user watermark — offsets are stable on the source
// (store.UserVisits), so a chunk is never re-sent after it was acked.
func (m *Migration) copyRange(ctx context.Context, r *migRange) error {
	g := m.g
	for _, u := range r.users {
		for r.copied[u] < r.frozen[u] {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w := r.copied[u]
			limit := r.frozen[u] - w
			if limit > g.cfg.MigrationChunk {
				limit = g.cfg.MigrationChunk
			}
			visits, err := m.exportChunk(ctx, r.From, u, w, limit)
			if err != nil {
				return err
			}
			if len(visits) == 0 {
				// The source has fewer records than the freeze counted —
				// it restarted and lost an unsynced WAL tail. Refreeze.
				return fmt.Errorf("cluster: source %s shrank under user %d (watermark %d of %d)",
					r.From, u, w, r.frozen[u])
			}
			if len(visits) > limit {
				visits = visits[:limit]
			}
			if err := m.importVisits(ctx, r.To, visits); err != nil {
				return err
			}
			m.mu.Lock()
			r.copied[u] = w + len(visits)
			m.mu.Unlock()
			m.records.Add(int64(len(visits)))
			g.met.migRecords.Add(int64(len(visits)))
			if g.cfg.MigrationThrottle > 0 {
				select {
				case <-ctx.Done():
					return ctx.Err()
				case <-time.After(g.cfg.MigrationThrottle):
				}
			}
		}
	}
	return nil
}

// verifyRange is the cutover handshake: under the exclusive gate it
// re-enumerates the range's users on the source (catching users born
// during the copy — their every record was double-written) and compares
// per-user record counts and content digests between source and target.
// Only an exact match — and a clean dirty flag — flips the range to
// done; the flip happens before the gate is released, so the first
// write after verify already routes to the new owner.
func (m *Migration) verifyRange(ctx context.Context, r *migRange) (bool, error) {
	r.gate.Lock()
	defer r.gate.Unlock()
	users, err := m.exportUsersInRange(ctx, r)
	if err != nil {
		return false, err
	}
	src, err := m.fetchDigests(ctx, r.From, users)
	if err != nil {
		return false, err
	}
	tgt, err := m.fetchDigests(ctx, r.To, users)
	if err != nil {
		return false, err
	}
	if r.dirty.Load() {
		m.mu.Lock()
		r.lastErr = "dirty: a double-write to the target failed"
		m.mu.Unlock()
		return false, nil
	}
	for _, u := range users {
		s, t := src[u], tgt[u]
		if s.count != t.count || s.sum != t.sum {
			m.mu.Lock()
			r.lastErr = fmt.Sprintf("digest mismatch for user %d: source %d/%x target %d/%x",
				u, s.count, s.sum, t.count, t.sum)
			m.mu.Unlock()
			return false, nil
		}
	}
	m.mu.Lock()
	r.users = users
	r.lastErr = ""
	m.mu.Unlock()
	r.state.Store(int32(rangeDone))
	m.g.log.Info("migration range cut over",
		slog.String("from", r.From), slog.String("to", r.To),
		slog.Int("users", len(users)))
	return true, nil
}

// finish completes a fully cut-over migration: swap the ring and
// membership, purge moved users from surviving sources, prune leavers.
func (m *Migration) finish(ctx context.Context) {
	g := m.g
	m.setPhase("cutover")

	g.ringMu.Lock()
	g.ring = m.newRing
	g.ringMu.Unlock()
	g.met.rebalances.Inc()
	g.event(EventRingRebalance, "", "ring cut over to post-migration membership",
		"backends", strconv.Itoa(len(m.to)))

	g.mu.Lock()
	g.backends = append([]string(nil), m.to...)
	g.mu.Unlock()

	// Purge: moved users' history still sits on surviving sources,
	// double-counting /v1/stats and wasting memory. Leavers skip the
	// purge — they are leaving. A purge failure is logged, not fatal:
	// the copy is authoritative on the target either way.
	purgeUsers := map[string][]int{}
	for _, r := range m.allRanges() {
		if contains(m.to, r.From) {
			purgeUsers[r.From] = append(purgeUsers[r.From], r.users...)
		}
	}
	for src, users := range purgeUsers {
		if len(users) == 0 {
			continue
		}
		if err := m.importReset(ctx, src, users); err != nil {
			g.log.Warn("migration source purge failed",
				slog.String("backend", src), slog.String("err", err.Error()))
		}
	}

	g.mu.Lock()
	for _, l := range m.leavers {
		delete(g.shards, l)
	}
	g.mu.Unlock()

	m.mu.Lock()
	m.phase = "done"
	m.finished = time.Now()
	m.mu.Unlock()
	m.phaseEvent("done")
	g.met.migDone.Inc()
	// Keep the terminal status visible after uninstall.
	st := m.Status()
	g.mu.Lock()
	g.lastMigration = &st
	g.mu.Unlock()
	g.migration.Store(nil)
	g.log.Info("cluster resize complete",
		slog.Int("backends", len(m.to)),
		slog.Int("users_moved", st.Users),
		slog.Int64("records_copied", st.RecordsCopied),
		slog.Duration("took", st.FinishedAt.Sub(st.StartedAt)))
}

// fail records a terminal failure. The migration stays installed: done
// ranges keep routing to their new owners (whose copies are now the
// only current ones), everything else to the old — and a re-POST of the
// same resize resumes from here.
func (m *Migration) fail(err error) {
	m.mu.Lock()
	m.phase = "failed"
	m.errMsg = err.Error()
	m.finished = time.Now()
	m.mu.Unlock()
	m.phaseEvent("failed")
	m.g.met.migFailed.Inc()
	m.g.log.Warn("cluster resize failed (resumable)", slog.String("err", err.Error()))
}

// --- shard I/O helpers ---------------------------------------------------

type userDigest struct {
	count int
	sum   uint64
}

func (m *Migration) shardGet(ctx context.Context, shard, path string, out any) error {
	ans, err := m.g.forwardWithRetry(ctx, http.MethodGet, shard, path, nil, nil)
	if err != nil {
		return err
	}
	if ans.status != http.StatusOK {
		return fmt.Errorf("cluster: %s%s answered HTTP %d", shard, path, ans.status)
	}
	return json.Unmarshal(ans.body, out)
}

// exportUsers lists every user stored on a shard.
func (m *Migration) exportUsers(ctx context.Context, shard string) ([]int, error) {
	var resp server.ExportUsersResponse
	if err := m.shardGet(ctx, shard, "/v1/export/users", &resp); err != nil {
		return nil, err
	}
	return resp.Users, nil
}

// exportUsersInRange lists the range's users present on its source.
func (m *Migration) exportUsersInRange(ctx context.Context, r *migRange) ([]int, error) {
	all, err := m.exportUsers(ctx, r.From)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, u := range all {
		if r.Contains(userHash(u)) {
			out = append(out, u)
		}
	}
	return out, nil
}

// fetchDigests reads per-user digests from a shard, batching the user
// list into bounded query strings.
func (m *Migration) fetchDigests(ctx context.Context, shard string, users []int) (map[int]userDigest, error) {
	out := make(map[int]userDigest, len(users))
	const batch = 256
	for start := 0; start < len(users); start += batch {
		end := start + batch
		if end > len(users) {
			end = len(users)
		}
		var resp server.DigestResponse
		path := "/v1/export/digest?users=" + joinUsers(users[start:end])
		if err := m.shardGet(ctx, shard, path, &resp); err != nil {
			return nil, err
		}
		for k, d := range resp.Digests {
			u, err := strconv.Atoi(k)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad digest key %q from %s", k, shard)
			}
			sum, err := strconv.ParseUint(d.Sum, 16, 64)
			if err != nil {
				return nil, fmt.Errorf("cluster: bad digest sum %q from %s", d.Sum, shard)
			}
			out[u] = userDigest{count: d.Count, sum: sum}
		}
	}
	return out, nil
}

// exportChunk reads one user's visits [from, from+limit) from a shard.
func (m *Migration) exportChunk(ctx context.Context, shard string, user, from, limit int) ([]server.WireVisit, error) {
	var resp server.ExportResponse
	path := fmt.Sprintf("/v1/export?users=%d&from=%d&limit=%d", user, from, limit)
	if err := m.shardGet(ctx, shard, path, &resp); err != nil {
		return nil, err
	}
	if len(resp.Users) != 1 || resp.Users[0].User != user {
		return nil, fmt.Errorf("cluster: export from %s answered wrong user set", shard)
	}
	return resp.Users[0].Visits, nil
}

// importVisits appends a chunk to a shard.
func (m *Migration) importVisits(ctx context.Context, shard string, visits []server.WireVisit) error {
	return m.importCall(ctx, shard, server.ImportRequest{Visits: visits})
}

// importReset drops users on a shard (recopy preamble, source purge).
func (m *Migration) importReset(ctx context.Context, shard string, users []int) error {
	if len(users) == 0 {
		return nil
	}
	return m.importCall(ctx, shard, server.ImportRequest{Reset: users})
}

func (m *Migration) importCall(ctx context.Context, shard string, req server.ImportRequest) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	ans, err := m.g.forwardWithRetry(ctx, http.MethodPost, shard, "/v1/import",
		map[string]string{"Content-Type": "application/json"}, body)
	if err != nil {
		return err
	}
	if ans.status != http.StatusOK {
		return fmt.Errorf("cluster: import to %s answered HTTP %d", shard, ans.status)
	}
	return nil
}

func joinUsers(users []int) string {
	buf := make([]byte, 0, len(users)*7)
	for i, u := range users {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendInt(buf, int64(u), 10)
	}
	return string(buf)
}

// --- HTTP handlers -------------------------------------------------------

// ResizeRequest is the POST /v1/cluster/resize body.
type ResizeRequest struct {
	Backends []string `json:"backends"`
}

// ResizeResponse reports how the resize request was handled.
type ResizeResponse struct {
	Status  string          `json:"status"` // started, resumed, joined, noop
	Ranges  int             `json:"ranges,omitempty"`
	Current MigrationStatus `json:"migration"`
}

func (g *Gateway) handleResize(w http.ResponseWriter, r *http.Request) {
	var req ResizeRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "cluster: invalid JSON: "+err.Error())
		return
	}
	if len(req.Backends) == 0 {
		writeError(w, http.StatusBadRequest, "cluster: resize needs a backend list")
		return
	}
	wasInstalled := g.migration.Load() != nil
	m, started, err := g.Resize(r.Context(), req.Backends)
	switch {
	case errors.Is(err, ErrResizeConflict):
		writeError(w, http.StatusConflict, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	case m == nil:
		writeJSON(w, http.StatusOK, ResizeResponse{Status: "noop"})
		return
	}
	st := m.Status()
	resp := ResizeResponse{Ranges: st.Ranges, Current: st}
	switch {
	case started && wasInstalled:
		resp.Status = "resumed"
	case started:
		resp.Status = "started"
	default:
		resp.Status = "joined"
	}
	code := http.StatusAccepted
	if !started {
		code = http.StatusOK
	}
	writeJSON(w, code, resp)
}

// handleReadyz is the gateway's readiness: 503 only when no shard is
// alive; a migration in flight degrades readiness to 200 +
// status "degraded" — the gateway is routing fine, but orchestrators
// must not bounce it mid-copy (the migration state machine lives in
// this process).
func (g *Gateway) handleReadyz(w http.ResponseWriter, r *http.Request) {
	st := g.ClusterStatus()
	body := struct {
		Status  string        `json:"status"`
		Cluster ClusterStatus `json:"cluster"`
	}{Status: "ok", Cluster: st}
	code := http.StatusOK
	switch {
	case st.AliveShards == 0:
		body.Status = "unready"
		code = http.StatusServiceUnavailable
	case st.Migration != nil && !terminalPhase(st.Migration.State):
		body.Status = "degraded"
	}
	writeJSON(w, code, body)
}

// registerMigrationMetrics wires the migration gauges; called from New
// once the gateway exists.
func (g *Gateway) registerMigrationMetrics() {
	g.reg.Describe("hostprof_gateway_migration_state",
		"resize migration phase: 0 idle, 1 planning, 2 copying, 3 draining, 4 cutover, 5 done, 6 failed")
	g.reg.Describe("hostprof_gateway_migration_records_total", "visit records copied between shards by migrations")
	g.reg.Describe("hostprof_gateway_migration_ranges_total", "moved key ranges finished, by outcome")
	g.reg.Describe("hostprof_gateway_migration_double_writes_total", "moved-user reports double-written during copy windows, by outcome")
	g.reg.Describe("hostprof_gateway_migrations_total", "resize migrations, by outcome")
	g.reg.GaugeFunc("hostprof_gateway_migration_state", func() float64 {
		if m := g.migration.Load(); m != nil {
			return migrationPhaseOrdinal(m.Status().State)
		}
		g.mu.Lock()
		last := g.lastMigration
		g.mu.Unlock()
		if last != nil {
			return migrationPhaseOrdinal(last.State)
		}
		return 0
	})
}
