package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestClientRetriesShedRequests: a 429 + Retry-After answer is retried
// with bounded backoff until the backend admits the request; the caller
// sees one successful call, not three errors.
func TestClientRetriesShedRequests(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "server overloaded, retry later")
			return
		}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer srv.Close()

	ext := &Extension{
		BaseURL:    srv.URL,
		MaxRetries: 3,
		// Retry-After says 1s; RetryMax bounds it so the test stays fast
		// and a hostile header cannot stall a client.
		RetryBase: time.Millisecond,
		RetryMax:  5 * time.Millisecond,
	}
	start := time.Now()
	if err := ext.Feedback(1, "original", false); err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("backend saw %d calls, want 3", got)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("retries took %s; Retry-After was not bounded by RetryMax", elapsed)
	}
}

// TestClientRetryBudgetExhausted: a persistently shedding backend
// surfaces the final 429 after MaxRetries attempts.
func TestClientRetryBudgetExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "still overloaded")
	}))
	defer srv.Close()

	ext := &Extension{BaseURL: srv.URL, MaxRetries: 2, RetryBase: time.Millisecond, RetryMax: 2 * time.Millisecond}
	err := ext.Feedback(1, "original", false)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want APIError 429", err)
	}
	if got := calls.Load(); got != 3 { // 1 initial + 2 retries
		t.Fatalf("backend saw %d calls, want 3", got)
	}
}

// TestClientDoesNotRetryBare503: 503 without Retry-After is a state
// answer (e.g. model not trained — the report's visits were already
// ingested); blind replay would duplicate them.
func TestClientDoesNotRetryBare503(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusServiceUnavailable, "server: model not trained yet")
	}))
	defer srv.Close()

	ext := &Extension{BaseURL: srv.URL, MaxRetries: 5, RetryBase: time.Millisecond}
	_, err := ext.Report(1, []string{"a.example"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want APIError 503", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("backend saw %d calls, want 1 (no retry)", got)
	}
}

// TestClientRetryHonorsContext: cancellation during a retry wait
// returns promptly with the context error.
func TestClientRetryHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded")
	}))
	defer srv.Close()

	ext := &Extension{BaseURL: srv.URL, MaxRetries: 10, RetryBase: 50 * time.Millisecond, RetryMax: time.Minute}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	err := ext.FeedbackContext(ctx, 1, "original", false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

// TestRetryDelay pins the backoff schedule: server-scheduled waits win
// but are capped; otherwise the wait doubles from base up to max.
func TestRetryDelay(t *testing.T) {
	base, max := 100*time.Millisecond, 2*time.Second
	cases := []struct {
		retryAfter string
		attempt    int
		want       time.Duration
	}{
		{"", 0, 100 * time.Millisecond},
		{"", 1, 200 * time.Millisecond},
		{"", 4, 1600 * time.Millisecond},
		{"", 5, 2 * time.Second},  // capped
		{"", 63, 2 * time.Second}, // shift overflow guarded
		{"1", 0, time.Second},
		{"60", 0, 2 * time.Second}, // server ask capped
		{"0", 2, 400 * time.Millisecond},
		{"soon", 0, 100 * time.Millisecond}, // unparseable → backoff
	}
	for _, c := range cases {
		if got := RetryDelay(c.retryAfter, c.attempt, base, max); got != c.want {
			t.Errorf("RetryDelay(%q, %d) = %s, want %s", c.retryAfter, c.attempt, got, c.want)
		}
	}
}
