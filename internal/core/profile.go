package core

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hostprof/internal/index"
	"hostprof/internal/obs"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// Aggregation selects the function g that folds the embeddings of a
// session's hostnames into a single session representation s (Section 4.1
// leaves g as a design choice; the ablation benches compare them).
type Aggregation int

// Supported aggregation functions.
const (
	// AggMean averages host embeddings (the default).
	AggMean Aggregation = iota
	// AggSum sums host embeddings.
	AggSum
	// AggIDF weights each host embedding by log(total/count), damping
	// ubiquitous hosts such as CDNs and portals.
	AggIDF
)

// ProfilerConfig tunes the session-profiling algorithm.
type ProfilerConfig struct {
	// N is the number of nearest hostnames retrieved around the session
	// representation (paper: N = 1000).
	N int
	// Agg is the aggregation function g. Default AggMean.
	Agg Aggregation
	// DedupFirstVisit drops repeat visits of a hostname within the
	// session, keeping the first, as the paper does to damp interactive
	// services (Section 4.1). Default true (set SkipDedup to disable).
	SkipDedup bool
	// IndexWorkers caps per-query scan parallelism of the similarity
	// index; 0 selects GOMAXPROCS (see index.Config.Workers).
	IndexWorkers int
	// SerialScan forces the single-threaded float64 reference scan
	// instead of the packed float32 index — the equivalence harness's
	// baseline, kept as an operational escape hatch.
	SerialScan bool
	// ANN routes Eq. (3) neighbourhood queries through an HNSW graph
	// over the packed rows instead of the exact scan — sublinear in the
	// vocabulary, opt-in, with a transparent exact-scan fallback when
	// the graph cannot meet its recall contract (see index.ANN). The
	// labelled view gets its own graph. Ignored under SerialScan.
	ANN bool
	// ANNEf is the ANN search breadth (dynamic candidate list size);
	// 0 selects the index default (128). Larger is slower and more
	// accurate.
	ANNEf int
	// ANNM is the ANN graph degree; 0 selects the index default (16).
	ANNM int
	// Metrics, when non-nil, receives the hostprof_index_* series: build
	// time and size gauges at construction, query counters and latency
	// per neighbourhood scan.
	Metrics *obs.Registry
	// Tracer, when non-nil, records profile.index/profile.batch child
	// spans under request contexts that carry an active trace.
	Tracer *tracer.Tracer
}

// Profiler turns hostname sessions into category vectors using a trained
// embedding model plus a partial ontology — the complete pipeline of
// paper Section 4.1.
type Profiler struct {
	model *Model
	ont   *ontology.Ontology
	cfg   ProfilerConfig

	// labelledIDs are vocabulary IDs with ontology coverage (H_L ∩ H).
	labelledIDs map[int]ontology.Vector
	idf         []float64

	// idx is the model's packed similarity index; lab is its view over
	// the labelled IDs only (nil when no vocabulary host is labelled or
	// when SerialScan is set).
	idx *index.Index
	lab *index.Index

	// ann and labANN are the HNSW graphs over idx and lab, nil unless
	// cfg.ANN. They are immutable once built, so a retrain swaps in a
	// whole new Profiler with fresh graphs — queries can never pair an
	// old graph with new vectors.
	ann    *index.ANN
	labANN *index.ANN

	// Sampled recall accounting: every 64th graph-answered query also
	// runs the exact scan and scores the ANN answer against it.
	annSample atomic.Uint64
	annHits   atomic.Int64
	annWant   atomic.Int64

	// Cached metric handles, nil without cfg.Metrics.
	mQueries      *obs.Counter
	mQuerySeconds *obs.Histogram
	mANNQueries   *obs.Counter
	mANNFallbacks *obs.Counter
	mANNSampled   *obs.Counter
}

// Profiler errors.
var (
	// ErrEmptySession is returned when the session has no usable hosts;
	// the paper's algorithm is only defined for non-empty sessions.
	ErrEmptySession = errors.New("core: empty session")
	// ErrNoLabels is returned when neither the session nor its embedding
	// neighbourhood contains any ontology-labelled host, so Equation (4)
	// is undefined (zero denominator).
	ErrNoLabels = errors.New("core: no labelled hosts reachable from session")
)

// NewProfiler builds a profiler over a trained model and an ontology.
func NewProfiler(m *Model, ont *ontology.Ontology, cfg ProfilerConfig) *Profiler {
	if cfg.N <= 0 {
		cfg.N = 1000
	}
	p := &Profiler{
		model:       m,
		ont:         ont,
		cfg:         cfg,
		labelledIDs: make(map[int]ontology.Vector),
	}
	for id := 0; id < m.Vocab().Len(); id++ {
		if v, ok := ont.Lookup(m.Vocab().Host(id)); ok {
			p.labelledIDs[id] = v
		}
	}
	if cfg.Agg == AggIDF {
		p.idf = make([]float64, m.Vocab().Len())
		total := float64(m.Vocab().Total())
		for id := range p.idf {
			p.idf[id] = logIDF(total, float64(m.Vocab().Count(id)))
		}
	}
	if !cfg.SerialScan {
		start := time.Now()
		p.idx = m.SimilarityIndex()
		if len(p.labelledIDs) > 0 {
			ids := make([]int, 0, len(p.labelledIDs))
			for id := range p.labelledIDs {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			p.lab = p.idx.Subset(ids)
		}
		if cfg.ANN {
			annCfg := index.ANNConfig{M: cfg.ANNM, Ef: cfg.ANNEf}
			p.ann = p.idx.BuildANN(annCfg)
			if p.lab != nil {
				p.labANN = p.lab.BuildANN(annCfg)
			}
		}
		if reg := cfg.Metrics; reg != nil {
			reg.Describe("hostprof_index_build_seconds", "Time to build (or attach) the packed similarity index per profiler.")
			reg.Describe("hostprof_index_rows", "Vocabulary rows in the packed similarity index.")
			reg.Describe("hostprof_index_bytes", "Size of the packed similarity matrices in bytes, labelled view included.")
			reg.Describe("hostprof_index_labelled_rows", "Ontology-labelled rows in the index's labelled-candidates view.")
			reg.Describe("hostprof_index_queries_total", "Neighbourhood queries answered by the packed similarity index.")
			reg.Describe("hostprof_index_query_seconds", "Packed similarity index query latency.")
			reg.Histogram("hostprof_index_build_seconds", obs.ExpBuckets(0.001, 2, 14)).Observe(time.Since(start).Seconds())
			bytes := p.idx.Bytes()
			labRows := 0
			if p.lab != nil {
				bytes += p.lab.Bytes()
				labRows = p.lab.Rows()
			}
			reg.Gauge("hostprof_index_rows").Set(float64(p.idx.Rows()))
			reg.Gauge("hostprof_index_bytes").Set(float64(bytes))
			reg.Gauge("hostprof_index_labelled_rows").Set(float64(labRows))
			p.mQueries = reg.Counter("hostprof_index_queries_total")
			p.mQuerySeconds = reg.Histogram("hostprof_index_query_seconds", obs.ExpBuckets(0.0001, 2, 14))
			if p.ann != nil {
				reg.Describe("hostprof_index_ann_build_seconds", "Time to build each HNSW graph (full and labelled view).")
				reg.Describe("hostprof_index_ann_nodes", "Rows inserted into the HNSW graph, by graph.")
				reg.Describe("hostprof_index_ann_edges", "Directed edges in the HNSW graph over all layers, by graph.")
				reg.Describe("hostprof_index_ann_max_level", "Highest populated HNSW layer, by graph.")
				reg.Describe("hostprof_index_ann_queries_total", "Neighbourhood queries routed through the ANN layer.")
				reg.Describe("hostprof_index_ann_fallbacks_total", "ANN queries answered by the exact-scan fallback instead of the graph.")
				reg.Describe("hostprof_index_ann_sampled_queries_total", "Graph-answered queries re-run exactly for the recall estimate.")
				reg.Describe("hostprof_index_ann_recall_estimate", "Sampled ANN recall against the exact scan since the last (re)build; 1 before any sample.")
				bh := reg.Histogram("hostprof_index_ann_build_seconds", obs.ExpBuckets(0.001, 2, 16))
				for _, g := range []struct {
					name string
					ann  *index.ANN
				}{{"full", p.ann}, {"labelled", p.labANN}} {
					if g.ann == nil {
						continue
					}
					st := g.ann.Stats()
					bh.Observe(st.BuildTime.Seconds())
					reg.Gauge("hostprof_index_ann_nodes", obs.L("graph", g.name)).Set(float64(st.GraphRows))
					reg.Gauge("hostprof_index_ann_edges", obs.L("graph", g.name)).Set(float64(st.Edges))
					reg.Gauge("hostprof_index_ann_max_level", obs.L("graph", g.name)).Set(float64(st.MaxLevel))
				}
				p.mANNQueries = reg.Counter("hostprof_index_ann_queries_total")
				p.mANNFallbacks = reg.Counter("hostprof_index_ann_fallbacks_total")
				p.mANNSampled = reg.Counter("hostprof_index_ann_sampled_queries_total")
				// Re-registering after a retrain points the series at the
				// new profiler's accounting (GaugeFunc replaces the fn).
				reg.GaugeFunc("hostprof_index_ann_recall_estimate", func() float64 {
					want := p.annWant.Load()
					if want == 0 {
						return 1
					}
					return float64(p.annHits.Load()) / float64(want)
				})
			}
		}
	}
	return p
}

// logIDF returns ln(total/count) floored at a small positive value, so
// ubiquitous hosts still contribute to the session vector, just weakly.
func logIDF(total, count float64) float64 {
	if count <= 0 {
		return 0
	}
	if r := total / count; r > 1 {
		return math.Log(r)
	}
	return 0.01
}

// Model returns the underlying embedding model.
func (p *Profiler) Model() *Model { return p.model }

// Ontology returns the ontology used for label transfer.
func (p *Profiler) Ontology() *ontology.Ontology { return p.ont }

// SessionVector computes the aggregated representation s of a session (the
// vector g({h : h ∈ s})). Hosts outside the vocabulary are ignored. The
// second return value is the number of in-vocabulary hosts used.
func (p *Profiler) SessionVector(hosts []string) ([]float64, int) {
	dim := p.model.Dim()
	s := make([]float64, dim)
	n := 0
	for _, h := range hosts {
		id, ok := p.model.Vocab().ID(h)
		if !ok {
			continue
		}
		w := 1.0
		if p.cfg.Agg == AggIDF {
			w = p.idf[id]
		}
		stats.AXPY(w, p.model.VectorByID(id), s)
		n++
	}
	if n == 0 {
		return s, 0
	}
	if p.cfg.Agg == AggMean {
		stats.Scale(1/float64(n), s)
	}
	return s, n
}

// dedupFirst keeps the first occurrence of every host, preserving order.
func dedupFirst(hosts []string) []string {
	seen := make(map[string]bool, len(hosts))
	out := make([]string, 0, len(hosts))
	for _, h := range hosts {
		if seen[h] {
			continue
		}
		seen[h] = true
		out = append(out, h)
	}
	return out
}

// annSearch answers one Eq. (3) neighbourhood query: through the HNSW
// graph when one is attached (counting queries and fallbacks, and
// keeping a sampled recall estimate by re-running every 64th
// graph-answered query exactly), through the exact scan otherwise.
func (p *Profiler) annSearch(ix *index.Index, ann *index.ANN, sVec []float64, k int) []index.Result {
	if ann == nil {
		return ix.SearchAppend(nil, sVec, k, p.cfg.IndexWorkers, index.NoExclude)
	}
	res, fellBack := ann.SearchAppend(nil, sVec, k, 0, p.cfg.IndexWorkers, index.NoExclude)
	p.mANNQueries.Inc() // nil-safe without cfg.Metrics
	if fellBack {
		p.mANNFallbacks.Inc()
		return res
	}
	if p.annSample.Add(1)%64 == 1 {
		exact := ix.SearchAppend(nil, sVec, k, p.cfg.IndexWorkers, index.NoExclude)
		p.annHits.Add(int64(index.RecallHits(exact, res)))
		p.annWant.Add(int64(len(exact)))
		p.mANNSampled.Inc()
	}
	return res
}

// nearest runs the Eq. (3) neighbourhood query — the k vocabulary hosts
// closest to the session representation — through the packed index (ANN
// graph first when enabled), or the serial float64 reference when
// SerialScan is set. The index scan is recorded as a profile.index span
// under ctx and counted in the hostprof_index_* metrics.
func (p *Profiler) nearest(ctx context.Context, sVec []float64, k int) []Neighbour {
	if p.idx == nil {
		return p.model.NearestToVector(sVec, k, nil)
	}
	_, span := p.cfg.Tracer.StartSpan(ctx, "profile.index")
	start := time.Now()
	res := p.annSearch(p.idx, p.ann, sVec, k)
	if p.mQueries != nil {
		p.mQueries.Inc()
		p.mQuerySeconds.Observe(time.Since(start).Seconds())
	}
	span.SetAttr("rows", strconv.Itoa(p.idx.Rows()))
	span.SetAttr("k", strconv.Itoa(k))
	span.SetAttr("ann", strconv.FormatBool(p.ann != nil))
	span.End()
	ns := make([]Neighbour, len(res))
	for i, r := range res {
		id := int(r.ID)
		ns[i] = Neighbour{ID: id, Host: p.model.Vocab().Host(id), Cosine: float64(r.Score)}
	}
	return ns
}

// NearestLabelled returns the k ontology-labelled vocabulary hosts
// nearest to the session's aggregated representation — the labelled
// candidate set of Eq. (3) without scanning unlabelled rows. It returns
// nil when the session has no in-vocabulary host or no vocabulary host
// is labelled.
func (p *Profiler) NearestLabelled(hosts []string, k int) []Neighbour {
	if !p.cfg.SkipDedup {
		hosts = dedupFirst(hosts)
	}
	sVec, inVocab := p.SessionVector(hosts)
	if inVocab == 0 || k <= 0 {
		return nil
	}
	if p.lab == nil {
		if p.idx != nil {
			return nil // indexed profiler with zero labelled hosts
		}
		// Serial fallback: scan everything, keep the labelled prefix.
		var out []Neighbour
		for _, nb := range p.model.NearestToVector(sVec, p.model.Vocab().Len(), nil) {
			if _, ok := p.labelledIDs[nb.ID]; !ok {
				continue
			}
			out = append(out, nb)
			if len(out) == k {
				break
			}
		}
		return out
	}
	res := p.annSearch(p.lab, p.labANN, sVec, k)
	ns := make([]Neighbour, len(res))
	for i, r := range res {
		id := int(r.ID)
		ns[i] = Neighbour{ID: id, Host: p.model.Vocab().Host(id), Cosine: float64(r.Score)}
	}
	return ns
}

// SessionKey returns a canonical cache key for a session: the sorted
// hosts that can influence its profile — in-vocabulary hosts (they shape
// the session vector) and ontology-labelled hosts (they contribute with
// weight 1 even out of vocabulary). Two sessions with equal keys produce
// identical profiles under this profiler, so the key is safe to memoise
// on until the model or ontology changes. The empty key means no host
// influences the profile; callers must not cache it. Repeats are
// dropped unless SkipDedup is set (then multiplicity changes the
// session vector, and the key keeps it).
func (p *Profiler) SessionKey(hosts []string) string {
	if !p.cfg.SkipDedup {
		hosts = dedupFirst(hosts)
	}
	keep := make([]string, 0, len(hosts))
	for _, h := range hosts {
		if _, ok := p.model.Vocab().ID(h); ok {
			keep = append(keep, h)
			continue
		}
		if _, ok := p.ont.Lookup(h); ok {
			keep = append(keep, h)
		}
	}
	if len(keep) == 0 {
		return ""
	}
	sort.Strings(keep)
	return strings.Join(keep, "\n")
}

// ProfileSession computes the category vector c^{s_u^T} of a session
// (Equations 3 and 4): hostnames labelled by the ontology contribute with
// weight 1; the N nearest vocabulary hosts to the session representation
// contribute with weight [cos(s, h)]_+ when labelled.
func (p *Profiler) ProfileSession(hosts []string) (ontology.Vector, error) {
	return p.ProfileSessionContext(context.Background(), hosts)
}

// ProfileSessionContext is ProfileSession under a request context: when
// ctx carries an active trace, the index scan appears as a profile.index
// child span.
func (p *Profiler) ProfileSessionContext(ctx context.Context, hosts []string) (ontology.Vector, error) {
	if !p.cfg.SkipDedup {
		hosts = dedupFirst(hosts)
	}
	if len(hosts) == 0 {
		return nil, ErrEmptySession
	}

	sVec, inVocab := p.SessionVector(hosts)

	// L: labelled hosts appearing in the session (whether or not they
	// made it into the vocabulary — the observer knows their names).
	type contrib struct {
		alpha float64
		vec   ontology.Vector
	}
	contribs := make(map[string]contrib)
	for _, h := range hosts {
		if v, ok := p.ont.Lookup(h); ok {
			contribs[h] = contrib{alpha: 1, vec: v} // Eq. (3), h ∈ L
		}
	}

	if inVocab > 0 {
		// H_{s}: the N nearest hosts to the session representation.
		for _, nb := range p.nearest(ctx, sVec, p.cfg.N) {
			v, ok := p.labelledIDs[nb.ID]
			if !ok {
				continue // unlabelled neighbours carry no categories
			}
			if _, inSession := contribs[nb.Host]; inSession {
				continue // session membership dominates (alpha = 1)
			}
			alpha := stats.SumPositive(nb.Cosine) // Eq. (3), otherwise
			if alpha > 0 {
				contribs[nb.Host] = contrib{alpha: alpha, vec: v}
			}
		}
	}

	// Nothing labelled in the session or its neighbourhood (this also
	// covers the all-unknown session: inVocab == 0 leaves only the
	// session's own ontology hits, of which there were none).
	if len(contribs) == 0 {
		return nil, ErrNoLabels
	}

	// Eq. (4): weighted average of category vectors.
	out := p.ont.Taxonomy().NewVector()
	var denom float64
	for _, c := range contribs {
		denom += c.alpha
	}
	for _, c := range contribs {
		w := c.alpha / denom
		for i, x := range c.vec {
			out[i] += w * x
		}
	}
	out.Clamp() // guard accumulated rounding just above 1
	return out, nil
}

// ProfileSessions profiles a batch of sessions, spreading them over
// worker goroutines (the per-query index parallelism then works within
// each session). It returns one vector-or-error per session, positions
// matching the input; the batch appears as one profile.batch span.
func (p *Profiler) ProfileSessions(ctx context.Context, sessions [][]string) ([]ontology.Vector, []error) {
	vecs := make([]ontology.Vector, len(sessions))
	errs := make([]error, len(sessions))
	if len(sessions) == 0 {
		return vecs, errs
	}
	ctx, span := p.cfg.Tracer.StartSpan(ctx, "profile.batch")
	span.SetAttr("sessions", strconv.Itoa(len(sessions)))
	defer span.End()

	workers := runtime.GOMAXPROCS(0)
	if workers > len(sessions) {
		workers = len(sessions)
	}
	if workers <= 1 {
		for i, s := range sessions {
			vecs[i], errs[i] = p.ProfileSessionContext(ctx, s)
		}
		return vecs, errs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sessions) {
					return
				}
				vecs[i], errs[i] = p.ProfileSessionContext(ctx, sessions[i])
			}
		}()
	}
	wg.Wait()
	return vecs, errs
}
