package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/obs/tracer"
	"hostprof/internal/ontology"
	"hostprof/internal/server"
	"hostprof/internal/synth"
)

// pathCounter counts requests per URL path, so tests can prove which
// shards actually served traffic.
type pathCounter struct {
	mu   sync.Mutex
	hits map[string]int
	next http.Handler
}

func (p *pathCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.hits[r.URL.Path]++
	p.mu.Unlock()
	p.next.ServeHTTP(w, r)
}

func (p *pathCounter) count(path string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[path]
}

// clusterFixture is an in-process 3-node cluster: N real backends over
// one shared synthetic world, behind one gateway, all under httptest.
type clusterFixture struct {
	gw       *Gateway
	gwSrv    *httptest.Server
	backends []*server.Backend
	shardSrv []*httptest.Server
	shardTrc []*tracer.Tracer
	counters []*pathCounter
	u        *synth.Universe
	ont      *ontology.Ontology
	db       *ads.DB
	pop      *synth.Population
}

func newClusterFixture(t *testing.T, shards, users int) *clusterFixture {
	return newClusterFixtureCfg(t, shards, users, nil)
}

// newClusterFixtureCfg is newClusterFixture with a gateway-config hook
// (migration tests tune vnode counts and copy throttles).
func newClusterFixtureCfg(t *testing.T, shards, users int, edit func(*Config)) *clusterFixture {
	t.Helper()
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))

	fx := &clusterFixture{u: u, ont: ont, db: db}
	var urls []string
	for i := 0; i < shards; i++ {
		urls = append(urls, fx.addShard(t))
	}

	cfg := Config{
		Backends: urls,
		// No background loop: tests drive CheckHealth explicitly so
		// health transitions are deterministic.
		HealthInterval:  -1,
		ShardBatchLimit: 8,
		Tracer:          tracer.New(tracer.Config{Service: "gateway", SampleRate: 1}),
		Logger:          quiet,
	}
	if edit != nil {
		edit(&cfg)
	}
	gw, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gw.Close)
	gw.CheckHealth(context.Background())
	fx.gw = gw
	fx.gwSrv = httptest.NewServer(gw.Handler())
	t.Cleanup(fx.gwSrv.Close)
	fx.pop = synth.NewPopulation(u, synth.PopulationConfig{Users: users, Days: 1, Seed: 13})
	return fx
}

// addShard brings up one more backend over the fixture's shared world
// and returns its URL (resize tests grow the cluster with it).
func (fx *clusterFixture) addShard(t *testing.T) string {
	t.Helper()
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	trc := tracer.New(tracer.Config{Service: "shard", SampleRate: 1})
	b, err := server.New(server.Config{
		Ontology: fx.ont,
		AdDB:     fx.db,
		Train:    core.TrainConfig{Dim: 16, Epochs: 4, MinCount: 2, Workers: 1, Seed: 11, Subsample: -1},
		Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		Tracer:   trc,
		Logger:   quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	pc := &pathCounter{hits: make(map[string]int), next: b.Handler()}
	srv := httptest.NewServer(pc)
	t.Cleanup(srv.Close)
	fx.backends = append(fx.backends, b)
	fx.shardSrv = append(fx.shardSrv, srv)
	fx.shardTrc = append(fx.shardTrc, trc)
	fx.counters = append(fx.counters, pc)
	return srv.URL
}

// feedViaGateway replays the population's browsing through the gateway,
// one report per (user, 10-minute bucket). Pre-training 503s (visits
// ingested, no model yet) are expected.
func (fx *clusterFixture) feedViaGateway(t *testing.T) map[int]bool {
	t.Helper()
	fed := make(map[int]bool)
	per := fx.pop.Browse().PerUserVisits()
	for uid, visits := range per {
		ext := &server.Extension{BaseURL: fx.gwSrv.URL, User: uid}
		var batch []string
		var batchTime int64 = -1
		flush := func() {
			if len(batch) == 0 {
				return
			}
			if _, err := ext.Report(batchTime, batch); err != nil {
				var apiErr *server.APIError
				if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
					t.Fatalf("report user %d: %v", uid, err)
				}
			}
			fed[uid] = true
			batch = batch[:0]
		}
		for _, v := range visits {
			if batchTime >= 0 && v.Time-batchTime > 600 {
				flush()
				batchTime = -1
			}
			if batchTime < 0 {
				batchTime = v.Time
			}
			batch = append(batch, v.Host)
		}
		flush()
	}
	return fed
}

// sessions builds n profiling sessions from labelled sites.
func (fx *clusterFixture) sessions(n int) [][]string {
	out := make([][]string, n)
	for i := range out {
		s := fx.u.Sites[i%len(fx.u.Sites)]
		sess := []string{fx.u.Hosts[s.Host].Name}
		for _, sup := range s.Support {
			sess = append(sess, fx.u.Hosts[sup].Name)
		}
		out[i] = sess
	}
	return out
}

// retrainViaGateway triggers a cluster retrain and returns the
// distribution report.
func (fx *clusterFixture) retrainViaGateway(t *testing.T) RetrainResponse {
	t.Helper()
	resp, err := http.Post(fx.gwSrv.URL+"/v1/retrain", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway retrain → %d: %s", resp.StatusCode, raw)
	}
	var out RetrainResponse
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("retrain body: %v: %s", err, raw)
	}
	return out
}

// TestGatewayClusterIntegration is the 3-node acceptance test: reports
// for ~1K users land on exactly the shard the ring names, a batch
// scatter-gathers across every shard, and one retrain converges all
// nodes to the same model version.
func TestGatewayClusterIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("3-node integration test skipped in -short")
	}
	fx := newClusterFixture(t, 3, 1000)
	fed := fx.feedViaGateway(t)
	if len(fed) < 900 {
		t.Fatalf("population produced only %d reporting users", len(fed))
	}

	// Placement: each shard must hold exactly the users the ring assigns
	// to it — no failover, no spillover.
	want := make(map[string]int)
	for uid := range fed {
		owner, ok := fx.gw.Ring().Owner(uid)
		if !ok {
			t.Fatal("ring empty")
		}
		want[owner]++
	}
	totalUsers := 0
	for i, b := range fx.backends {
		st := b.CurrentStats()
		totalUsers += st.Users
		if st.Users != want[fx.shardSrv[i].URL] {
			t.Errorf("shard %d holds %d users, ring assigns %d", i, st.Users, want[fx.shardSrv[i].URL])
		}
		if st.Users == 0 {
			t.Errorf("shard %d received no users of %d", i, len(fed))
		}
	}
	if totalUsers != len(fed) {
		t.Fatalf("shards hold %d users total, fed %d — users duplicated or lost", totalUsers, len(fed))
	}

	// One retrain through the gateway: the designated node trains, the
	// artifact ships, all shards converge on one version.
	rep := fx.retrainViaGateway(t)
	if rep.Version == "" || rep.Partial {
		t.Fatalf("retrain report: %+v", rep)
	}
	if len(rep.Distributed) != 2 {
		t.Fatalf("distributed to %v, want the 2 non-training shards", rep.Distributed)
	}
	for i, b := range fx.backends {
		if got := b.ModelVersion(); got != rep.Version {
			t.Fatalf("shard %d at version %q, cluster trained %q", i, got, rep.Version)
		}
	}
	st := fx.gw.ClusterStatus()
	if !st.Converged || st.ModelVersion != rep.Version || st.ReadyShards != 3 {
		t.Fatalf("cluster status after retrain: %+v", st)
	}

	// Post-train, a report through the gateway serves ads end to end.
	var uid int
	for uid = range fed {
		break
	}
	ext := &server.Extension{BaseURL: fx.gwSrv.URL, User: uid}
	if _, err := ext.Report(10_000_000, fx.sessions(1)[0]); err != nil {
		t.Fatalf("post-train report via gateway: %v", err)
	}

	// Scatter-gather: a 48-session batch at chunk size 8 must touch
	// every ready shard and come back whole and in order.
	sessions := fx.sessions(48)
	profiles, err := ext.ProfileBatch(context.Background(), sessions)
	if err != nil {
		t.Fatalf("batch via gateway: %v", err)
	}
	if len(profiles) != len(sessions) {
		t.Fatalf("got %d profiles for %d sessions", len(profiles), len(sessions))
	}
	profiled := 0
	for _, p := range profiles {
		if p.Error == "" && len(p.Categories) > 0 {
			profiled++
		}
	}
	if profiled < len(sessions)/2 {
		t.Fatalf("only %d/%d sessions profiled", profiled, len(sessions))
	}
	for i, pc := range fx.counters {
		if pc.count("/v1/profile/batch") == 0 {
			t.Errorf("shard %d served no batch chunk", i)
		}
	}
}

// TestGatewayShedsOnlyDeadShardKeyspace: killing one shard must refuse
// exactly that shard's users (503 + Retry-After), keep every other
// user's traffic flowing, and degrade batches to partial results rather
// than failing them.
func TestGatewayShedsOnlyDeadShardKeyspace(t *testing.T) {
	fx := newClusterFixture(t, 3, 60)
	fx.feedViaGateway(t)
	rep := fx.retrainViaGateway(t)
	if rep.Partial {
		t.Fatalf("retrain partial: %+v", rep)
	}

	// Kill shard 1 and let the gateway notice.
	dead := fx.shardSrv[1].URL
	fx.shardSrv[1].Close()
	fx.gw.CheckHealth(context.Background())
	if st := fx.gw.ClusterStatus(); st.AliveShards != 2 {
		t.Fatalf("alive = %d after kill, want 2", st.AliveShards)
	}

	// The gateway itself stays ready while any shard lives.
	resp, err := http.Get(fx.gwSrv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway /readyz → %d with 2/3 shards alive", resp.StatusCode)
	}

	// Exactly the dead shard's keyspace is shed.
	session := fx.sessions(1)[0]
	shed, served := 0, 0
	for uid := 0; uid < 100; uid++ {
		owner, _ := fx.gw.Ring().Owner(uid)
		ext := &server.Extension{BaseURL: fx.gwSrv.URL, User: uid}
		_, err := ext.Report(20_000_000, session)
		if owner == dead {
			var apiErr *server.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
				t.Fatalf("user %d on dead shard: err = %v, want shed 503", uid, err)
			}
			if apiErr.RetryAfter == "" {
				t.Fatalf("shed 503 for user %d missing Retry-After", uid)
			}
			shed++
		} else {
			if err != nil {
				t.Fatalf("user %d on live shard %s failed: %v", uid, owner, err)
			}
			served++
		}
	}
	if shed == 0 || served == 0 {
		t.Fatalf("degenerate split: %d shed / %d served", shed, served)
	}

	// Batches keep working over the survivors, whole and unflagged.
	var batchResp server.ProfileBatchResponse
	raw := postJSON(t, fx.gwSrv.URL+"/v1/profile/batch", server.ProfileBatchRequest{Sessions: fx.sessions(24)}, &batchResp)
	if raw.StatusCode != http.StatusOK || raw.Header.Get(PartialHeader) != "" {
		t.Fatalf("batch after clean kill: %d partial=%q", raw.StatusCode, raw.Header.Get(PartialHeader))
	}
	if len(batchResp.Profiles) != 24 {
		t.Fatalf("got %d profiles, want 24", len(batchResp.Profiles))
	}

	// Now kill shard 2 *without* a health pass: the gateway still
	// believes it is ready, so its chunks fail mid-flight and must
	// degrade to per-session errors — the partial-result contract.
	fx.shardSrv[2].Close()
	raw = postJSON(t, fx.gwSrv.URL+"/v1/profile/batch", server.ProfileBatchRequest{Sessions: fx.sessions(32)}, &batchResp)
	if raw.StatusCode != http.StatusOK {
		t.Fatalf("batch during unnoticed outage → %d, want 200 partial", raw.StatusCode)
	}
	if raw.Header.Get(PartialHeader) != "1" {
		t.Fatal("partial batch not flagged with X-Hostprof-Partial")
	}
	if len(batchResp.Profiles) != 32 {
		t.Fatalf("got %d profiles, want 32", len(batchResp.Profiles))
	}
	failed, ok := 0, 0
	for _, p := range batchResp.Profiles {
		if p.Error != "" {
			failed++
		} else {
			ok++
		}
	}
	if failed == 0 || ok == 0 {
		t.Fatalf("partial batch split %d failed / %d ok; want both non-zero", failed, ok)
	}
	// The failed request marked the shard dead in-band.
	if st := fx.gw.ClusterStatus(); st.AliveShards != 1 {
		t.Fatalf("alive = %d after in-band failure, want 1", st.AliveShards)
	}
}

// postJSON posts v and decodes the response body into out, returning
// the raw response for status/header asserts.
func postJSON(t *testing.T, url string, v, out any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding %s: %v: %s", url, err, raw)
		}
	}
	return resp
}

// TestGatewayTraceSpansCluster: one trace ID covers the whole
// distributed request — the client span, the gateway's gw.profile_batch
// span, and handler spans on at least two shards — each visible in the
// respective process's /debug/traces.
func TestGatewayTraceSpansCluster(t *testing.T) {
	fx := newClusterFixture(t, 3, 60)
	fx.feedViaGateway(t)
	fx.retrainViaGateway(t)

	clientTrc := tracer.New(tracer.Config{Service: "client", SampleRate: 1})
	ext := &server.Extension{BaseURL: fx.gwSrv.URL, Tracer: clientTrc}
	// 48 sessions at chunk size 8 over 3 ready shards: every shard gets
	// scatter chunks.
	if _, err := ext.ProfileBatch(context.Background(), fx.sessions(48)); err != nil {
		t.Fatalf("traced batch: %v", err)
	}

	clientTraces := clientTrc.Traces()
	if len(clientTraces) == 0 {
		t.Fatal("client recorded no trace")
	}
	traceID := clientTraces[len(clientTraces)-1].TraceID

	// Push the client's spans to the gateway collector, then read the
	// merged trace back over HTTP: client and gateway halves share the
	// trace ID.
	gwExt := &server.Extension{BaseURL: fx.gwSrv.URL}
	if err := gwExt.PushTrace(context.Background(), clientTraces[len(clientTraces)-1].Spans); err != nil {
		t.Fatalf("pushing client spans to gateway: %v", err)
	}
	gwTrace := fetchTrace(t, fx.gwSrv.URL, traceID)
	if !hasSpan(gwTrace, "gw.profile_batch") || !hasSpan(gwTrace, "client.profile_batch") {
		t.Fatalf("gateway trace %s missing gateway or client span: %+v", traceID, spanNames(gwTrace))
	}

	// At least two shards carry handler spans under the same trace ID.
	shardsInTrace := 0
	for i, srv := range fx.shardSrv {
		resp, err := http.Get(srv.URL + "/debug/traces?trace=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusNotFound {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			continue
		}
		var body struct {
			Traces []tracer.TraceJSON `json:"traces"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil || len(body.Traces) != 1 {
			t.Fatalf("shard %d trace fetch: %v (%d traces)", i, err, len(body.Traces))
		}
		if body.Traces[0].TraceID != traceID {
			t.Fatalf("shard %d returned trace %s, want %s", i, body.Traces[0].TraceID, traceID)
		}
		if hasSpan(body.Traces[0], "http.profile_batch") {
			shardsInTrace++
		}
	}
	if shardsInTrace < 2 {
		t.Fatalf("trace %s spans only %d shard(s), want ≥ 2", traceID, shardsInTrace)
	}
}

func fetchTrace(t *testing.T, baseURL, traceID string) tracer.TraceJSON {
	t.Helper()
	resp, err := http.Get(baseURL + "/debug/traces?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("/debug/traces?trace=%s → %d: %s", traceID, resp.StatusCode, raw)
	}
	var body struct {
		Traces []tracer.TraceJSON `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Traces) != 1 {
		t.Fatalf("got %d traces for one ID", len(body.Traces))
	}
	return body.Traces[0]
}

func hasSpan(tr tracer.TraceJSON, name string) bool {
	for _, s := range tr.Spans {
		if s.Name == name {
			return true
		}
	}
	return false
}

func spanNames(tr tracer.TraceJSON) []string {
	out := make([]string, len(tr.Spans))
	for i, s := range tr.Spans {
		out[i] = s.Name
	}
	return out
}
