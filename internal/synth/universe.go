package synth

import (
	"fmt"

	"hostprof/internal/ontology"
	"hostprof/internal/stats"
)

// HostKind classifies a hostname in the synthetic universe.
type HostKind int

// Host kinds.
const (
	// KindSite is a first-party website a user deliberately visits.
	KindSite HostKind = iota
	// KindSupport is per-site infrastructure (api./cdn./static. hosts)
	// fetched automatically alongside its owning site.
	KindSupport
	// KindSharedCDN is shared infrastructure serving many unrelated
	// sites.
	KindSharedCDN
	// KindTracker is an advertising/tracking host requested from most
	// pages; the paper filters these out with blocklists.
	KindTracker
)

// String returns a human-readable kind name.
func (k HostKind) String() string {
	switch k {
	case KindSite:
		return "site"
	case KindSupport:
		return "support"
	case KindSharedCDN:
		return "shared-cdn"
	case KindTracker:
		return "tracker"
	default:
		return fmt.Sprintf("HostKind(%d)", int(k))
	}
}

// Host is one hostname of the universe with its ground truth.
type Host struct {
	ID   int
	Name string
	Kind HostKind
	// Site is the owning site index for KindSite/KindSupport hosts,
	// -1 otherwise.
	Site int
	// HasContent reports whether fetching the hostname's root URL would
	// return a usable page; in the paper 67% of hostnames did not.
	HasContent bool
}

// Site is a first-party website: a primary host, its support hosts, shared
// CDN dependencies and a ground-truth category vector.
type Site struct {
	ID        int
	Host      int   // primary host ID
	Support   []int // per-site support host IDs
	SharedCDN []int // shared CDN host IDs fetched with the site
	// Categories is the ground-truth second-level category vector.
	Categories ontology.Vector
	// Top is the dominant top-level topic.
	Top int
}

// UniverseConfig sizes the synthetic web.
type UniverseConfig struct {
	// Sites is the number of first-party websites. Default 500.
	Sites int
	// SupportMin/Max bound per-site infrastructure hosts. Default 1..4.
	SupportMin, SupportMax int
	// SharedCDNProviders and SharedCDNNodes size the shared CDN pool.
	// Defaults 4 and 40.
	SharedCDNProviders, SharedCDNNodes int
	// Trackers is the number of advertising/tracking hosts. Default 60.
	Trackers int
	// ZipfExponent skews site popularity. Default 1.05.
	ZipfExponent float64
	// Seed drives all generation randomness.
	Seed uint64
}

func (c UniverseConfig) withDefaults() UniverseConfig {
	if c.Sites <= 0 {
		c.Sites = 500
	}
	if c.SupportMin <= 0 {
		c.SupportMin = 1
	}
	if c.SupportMax < c.SupportMin {
		c.SupportMax = c.SupportMin + 3
	}
	if c.SharedCDNProviders <= 0 {
		c.SharedCDNProviders = 4
	}
	if c.SharedCDNNodes <= 0 {
		c.SharedCDNNodes = 40
	}
	if c.Trackers <= 0 {
		c.Trackers = 60
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 1.05
	}
	return c
}

// Universe is the complete synthetic web with ground truth.
type Universe struct {
	Config UniverseConfig
	Tax    *ontology.Taxonomy
	Hosts  []Host
	Sites  []Site
	// TrackerIDs, SharedCDNIDs index into Hosts.
	TrackerIDs   []int
	SharedCDNIDs []int
	// Popularity holds the per-site visit probability (Zipf over a
	// random site permutation, so popularity is independent of topic).
	Popularity []float64

	byName map[string]int
}

// topicPrevalence gives some top-level topics more sites than others,
// shaping Figure 6a (Online Communities / Arts & Entertainment dominate).
// Index aligns with ontology taxonomy top-level order; missing entries
// default to 1.
var topicPrevalence = map[string]float64{
	"Online Communities":      6,
	"Arts & Entertainment":    6,
	"People & Society":        4,
	"Jobs & Education":        3.5,
	"Games":                   3,
	"Internet & Telecom":      2.5,
	"Computers & Electronics": 2.5,
	"Shopping":                2.5,
	"News":                    2,
	"Sports":                  1.8,
	"Travel":                  1.6,
	"Finance":                 1.4,
	"Health":                  1.3,
}

// NewUniverse generates a universe deterministically from cfg.
func NewUniverse(cfg UniverseConfig) *Universe {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)
	gen := newNameGen(rng.Split())
	tax := ontology.NewTaxonomy()

	u := &Universe{
		Config: cfg,
		Tax:    tax,
		byName: make(map[string]int),
	}

	// Topic sampler over top-level topics.
	weights := make([]float64, tax.NumTops())
	for ti := range weights {
		w := topicPrevalence[tax.TopName(ti)]
		if w == 0 {
			w = 1
		}
		weights[ti] = w
	}
	topicSampler := stats.NewWeighted(rng.Split(), weights)

	addHost := func(h Host) int {
		h.ID = len(u.Hosts)
		u.Hosts = append(u.Hosts, h)
		u.byName[h.Name] = h.ID
		return h.ID
	}

	// Shared CDN pool.
	for n := 0; n < cfg.SharedCDNNodes; n++ {
		provider := n % cfg.SharedCDNProviders
		id := addHost(Host{
			Name: gen.sharedCDN(provider, n),
			Kind: KindSharedCDN,
			Site: -1,
		})
		u.SharedCDNIDs = append(u.SharedCDNIDs, id)
	}

	// Trackers.
	for k := 0; k < cfg.Trackers; k++ {
		id := addHost(Host{
			Name: gen.tracker(k%7, k),
			Kind: KindTracker,
			Site: -1,
		})
		u.TrackerIDs = append(u.TrackerIDs, id)
	}

	// Sites with ground-truth categories.
	for s := 0; s < cfg.Sites; s++ {
		top := topicSampler.Draw()
		cats := tax.NewVector()
		subs := tax.SubsOf(top)
		// Primary category strongly weighted, up to two extras.
		primary := subs[rng.Intn(len(subs))]
		cats[primary] = 0.7 + 0.3*rng.Float64()
		for extra := 0; extra < rng.Intn(3); extra++ {
			c := subs[rng.Intn(len(subs))]
			if cats[c] == 0 {
				cats[c] = 0.3 + 0.4*rng.Float64()
			}
		}
		// Occasionally a secondary topic (cross-topic site).
		if rng.Bool(0.15) {
			other := topicSampler.Draw()
			osubs := tax.SubsOf(other)
			c := osubs[rng.Intn(len(osubs))]
			if cats[c] == 0 {
				cats[c] = 0.2 + 0.3*rng.Float64()
			}
		}

		siteName := gen.site()
		hostID := addHost(Host{
			Name:       siteName,
			Kind:       KindSite,
			Site:       s,
			HasContent: true,
		})

		site := Site{
			ID:         s,
			Host:       hostID,
			Categories: cats,
			Top:        top,
		}
		nSupport := cfg.SupportMin + rng.Intn(cfg.SupportMax-cfg.SupportMin+1)
		for k := 0; k < nSupport; k++ {
			sid := addHost(Host{
				Name: gen.support(siteName, k),
				Kind: KindSupport,
				Site: s,
			})
			site.Support = append(site.Support, sid)
		}
		// Each site depends on 0-2 shared CDN nodes.
		for k := 0; k < rng.Intn(3); k++ {
			site.SharedCDN = append(site.SharedCDN,
				u.SharedCDNIDs[rng.Intn(len(u.SharedCDNIDs))])
		}
		u.Sites = append(u.Sites, site)
	}

	// Popularity: Zipf ranks assigned over a random permutation of
	// sites so that popularity and topic are independent.
	perm := rng.Perm(cfg.Sites)
	z := stats.NewZipf(rng.Split(), cfg.ZipfExponent, cfg.Sites)
	u.Popularity = make([]float64, cfg.Sites)
	for rank, siteIdx := range perm {
		u.Popularity[siteIdx] = z.Prob(rank)
	}
	return u
}

// HostByName returns the host record for a hostname.
func (u *Universe) HostByName(name string) (Host, bool) {
	id, ok := u.byName[name]
	if !ok {
		return Host{}, false
	}
	return u.Hosts[id], true
}

// HostNames returns all hostnames in ID order.
func (u *Universe) HostNames() []string {
	out := make([]string, len(u.Hosts))
	for i, h := range u.Hosts {
		out[i] = h.Name
	}
	return out
}

// SiteOfHost returns the site owning the given host ID, or nil for
// infrastructure not tied to one site.
func (u *Universe) SiteOfHost(hostID int) *Site {
	h := u.Hosts[hostID]
	if h.Site < 0 {
		return nil
	}
	return &u.Sites[h.Site]
}

// GroundTruthCategories returns the category vector a host inherits from
// its owning site (support hosts inherit the site's categories), or nil
// for shared CDNs and trackers.
func (u *Universe) GroundTruthCategories(hostID int) ontology.Vector {
	s := u.SiteOfHost(hostID)
	if s == nil {
		return nil
	}
	return s.Categories
}

// ContentlessFraction returns the fraction of hostnames whose root URL
// serves no usable page (support hosts, shared CDNs, trackers). The paper
// measured 67%; the default universe shape lands in the same regime.
func (u *Universe) ContentlessFraction() float64 {
	if len(u.Hosts) == 0 {
		return 0
	}
	n := 0
	for _, h := range u.Hosts {
		if !h.HasContent {
			n++
		}
	}
	return float64(n) / float64(len(u.Hosts))
}
