package server

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hostprof/internal/ads"
	"hostprof/internal/core"
	"hostprof/internal/fault"
	"hostprof/internal/store"
	"hostprof/internal/synth"
)

// The chaos test needs a real SIGKILL — no deferred handlers, no
// graceful shutdown — so the test binary re-executes itself as a victim
// backend process. TestMain dispatches on an env var: the child serves
// until killed, the parent is the normal test run.
const (
	chaosChildEnv = "HOSTPROF_CHAOS_CHILD"
	chaosDirEnv   = "HOSTPROF_CHAOS_DIR"
)

func TestMain(m *testing.M) {
	if os.Getenv(chaosChildEnv) == "1" {
		chaosChild()
		return
	}
	os.Exit(m.Run())
}

// chaosChild runs a durable backend with injected WAL latency and
// serves it until the parent kills the process. FsyncAlways makes every
// acknowledged report durable by construction, which is the property
// the parent verifies after the kill.
func chaosChild() {
	fault.Set(fault.StoreWALAppend, fault.Latency(2*time.Millisecond))
	u := synth.NewUniverse(synth.UniverseConfig{Sites: 100, Trackers: 15, Seed: 3})
	ont := synth.BuildOntology(u, synth.OntologyConfig{Coverage: 0.2, Seed: 5})
	db := ads.BuildFromOntology(ont, ads.BuildConfig{Seed: 7})
	b, err := New(Config{
		Ontology: ont,
		AdDB:     db,
		Train:    core.TrainConfig{Dim: 16, Epochs: 2, MinCount: 1, Workers: 1, Seed: 11, Subsample: -1},
		Profile:  core.ProfilerConfig{N: 30, Agg: core.AggIDF},
		DataDir:  os.Getenv(chaosDirEnv),
		Fsync:    store.FsyncAlways,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "chaos child:", err)
		os.Exit(1)
	}
	// The parent scans stdout for this line to find the port.
	fmt.Printf("ADDR %s\n", ln.Addr())
	http.Serve(ln, b.Handler())
}

// TestChaosSIGKILLUnderWALLatency is the crash-consistency acceptance
// test: a backend with per-append WAL latency injected is SIGKILLed
// while concurrent reporters hammer /v1/report, and the recovered store
// must hold at least every visit whose report was acknowledged over
// HTTP before the kill (FsyncAlways: ack implies fsync'd).
func TestChaosSIGKILLUnderWALLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess chaos test skipped in -short")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), chaosChildEnv+"=1", chaosDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill(); cmd.Wait() })

	var addr string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if rest, ok := strings.CutPrefix(sc.Text(), "ADDR "); ok {
			addr = rest
			break
		}
	}
	if addr == "" {
		t.Fatalf("child never reported its address (scan err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// Hammer the victim. Every report carries exactly one visit; a
	// completed HTTP response (200 served, or 503 not-trained — visits
	// are ingested before profiling) acknowledges that the visit was
	// WAL-appended and fsynced.
	var acked atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	client := &http.Client{Timeout: 5 * time.Second}
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := fmt.Sprintf(`{"user":%d,"time":%d,"hosts":["chaos-%d-%d.example"]}`,
					w, 1000+i, w, i)
				resp, err := client.Post("http://"+addr+"/v1/report", "application/json",
					bytes.NewReader([]byte(body)))
				if err != nil {
					return // the kill landed; in-flight request not acked
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
					acked.Add(1)
				}
			}
		}(w)
	}

	// Let real traffic build up, then SIGKILL mid-append (the injected
	// latency makes "mid-append" the likely phase).
	deadline := time.Now().Add(10 * time.Second)
	for acked.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	close(stop)
	wg.Wait()

	want := acked.Load()
	if want < 50 {
		t.Fatalf("only %d reports acknowledged before the kill; victim too slow", want)
	}

	// Recover the store the way a restarted backend would.
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer st.Close()
	if got := int64(st.Len()); got < want {
		t.Fatalf("recovered %d visits, but %d reports were acknowledged before SIGKILL", got, want)
	}
	t.Logf("acked %d reports, recovered %d visits", want, st.Len())
}
