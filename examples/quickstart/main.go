// Quickstart: train hostname embeddings on a handful of synthetic
// browsing sequences, then profile a session that contains only an
// unlabelled API hostname — the paper's core trick: the embedding places
// api.hotelsearch.example next to the labelled travel sites it is
// co-requested with, so the session still gets a travel profile.
package main

import (
	"fmt"
	"log"
	"sort"

	"hostprof"
)

func main() {
	// Browsing sequences as a network observer would collect them:
	// one sequence per user per day, hostnames in request order.
	corpus := [][]string{
		{"flights.example", "api.hotelsearch.example", "hotels.example", "flights.example", "cruises.example"},
		{"hotels.example", "api.hotelsearch.example", "flights.example", "api.hotelsearch.example", "hotels.example"},
		{"cruises.example", "hotels.example", "api.hotelsearch.example", "flights.example"},
		{"kickoff.example", "goals.example", "livescores.example", "kickoff.example", "goals.example"},
		{"goals.example", "livescores.example", "kickoff.example", "livescores.example"},
		{"livescores.example", "kickoff.example", "goals.example", "kickoff.example"},
	}

	model, err := hostprof.Train(corpus, hostprof.TrainConfig{
		Dim: 16, Window: 2, MinCount: 1, Epochs: 30, Workers: 1, Seed: 42,
		Subsample: -1, // tiny corpus: keep every occurrence
	})
	if err != nil {
		log.Fatalf("training: %v", err)
	}

	// A tiny ontology: only three hostnames are labelled (real-world
	// coverage is ~10%).
	tax := hostprof.NewTaxonomy()
	ont := hostprof.NewOntology(tax)
	travel, _ := tax.IDByName("Travel / Air Travel")
	sports, _ := tax.IDByName("Sports / Soccer")
	label := func(host string, cat int) {
		v := tax.NewVector()
		v[cat] = 0.9
		ont.Add(host, v)
	}
	label("flights.example", travel)
	label("hotels.example", travel)
	label("livescores.example", sports)

	profiler := hostprof.NewProfiler(model, ont, hostprof.ProfilerConfig{N: 4})

	// The observer sees a session consisting of a single unlabelled
	// API hostname.
	session := []string{"api.hotelsearch.example"}
	profile, err := profiler.ProfileSession(session)
	if err != nil {
		log.Fatalf("profiling: %v", err)
	}

	fmt.Printf("session: %v\n", session)
	fmt.Println("top categories:")
	type kv struct {
		id int
		w  float64
	}
	var top []kv
	for id, w := range profile {
		if w > 0 {
			top = append(top, kv{id, w})
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].w > top[j].w })
	for i, e := range top {
		if i >= 3 {
			break
		}
		fmt.Printf("  %.3f  %s\n", e.w, tax.Category(e.id).Name)
	}
	if len(top) > 0 && top[0].id == travel {
		fmt.Println("=> unlabelled API endpoint correctly profiled as travel")
	}
}
