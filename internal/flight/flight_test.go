package flight

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoCoalescesConcurrentCallers(t *testing.T) {
	var g Group
	var runs atomic.Int64
	release := make(chan struct{})
	fn := func(ctx context.Context) error {
		runs.Add(1)
		<-release
		return errors.New("shared")
	}
	const callers = 8
	var leaders atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			leader, err := g.Do(context.Background(), context.Background(), fn)
			if leader {
				leaders.Add(1)
			}
			errs[i] = err
		}(i)
	}
	// Let every caller join before releasing the run.
	for g.Running() == false {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if leaders.Load() != 1 {
		t.Fatalf("%d leaders, want 1", leaders.Load())
	}
	for i, err := range errs {
		if err == nil || err.Error() != "shared" {
			t.Fatalf("caller %d got %v, want shared error", i, err)
		}
	}
	if g.Running() {
		t.Fatal("group still running after completion")
	}
}

func TestDoSequentialRunsAreIndependent(t *testing.T) {
	var g Group
	var runs atomic.Int64
	fn := func(ctx context.Context) error { runs.Add(1); return nil }
	for i := 0; i < 3; i++ {
		if _, err := g.Do(context.Background(), context.Background(), fn); err != nil {
			t.Fatal(err)
		}
	}
	if runs.Load() != 3 {
		t.Fatalf("sequential calls coalesced: %d runs", runs.Load())
	}
}

func TestWaiterAbandonsWithoutAbortingRun(t *testing.T) {
	var g Group
	release := make(chan struct{})
	done := make(chan struct{})
	fn := func(ctx context.Context) error {
		<-release
		close(done)
		return nil
	}
	go g.Do(context.Background(), context.Background(), fn)
	for !g.Running() {
		time.Sleep(time.Millisecond)
	}
	// A joiner with a cancelled wait context returns immediately...
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.Do(ctx, ctx, fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner got %v", err)
	}
	// ...and the run is still alive and completes.
	if !g.Running() {
		t.Fatal("run aborted by abandoned waiter")
	}
	close(release)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("run never completed")
	}
}

func TestStartReportsInFlight(t *testing.T) {
	var g Group
	release := make(chan struct{})
	blocking := func(ctx context.Context) error { <-release; return nil }
	if !g.Start(context.Background(), blocking) {
		t.Fatal("first Start did not start")
	}
	if g.Start(context.Background(), blocking) {
		t.Fatal("second Start started a duplicate run")
	}
	close(release)
	for g.Running() {
		time.Sleep(time.Millisecond)
	}
	if !g.Start(context.Background(), func(ctx context.Context) error { return nil }) {
		t.Fatal("Start after completion did not start")
	}
}

func TestPanickingRunSurfacesErrorAndUnwedges(t *testing.T) {
	var g Group
	_, err := g.Do(context.Background(), context.Background(), func(ctx context.Context) error {
		panic("kaboom")
	})
	if err == nil {
		t.Fatal("panicking run returned nil error")
	}
	// The group must accept new runs afterwards.
	ran := false
	if _, err := g.Do(context.Background(), context.Background(), func(ctx context.Context) error {
		ran = true
		return nil
	}); err != nil || !ran {
		t.Fatalf("group wedged after panic: ran=%v err=%v", ran, err)
	}
}
